"""The naive aggregation interpreter, retained as the executable spec.

This is the original per-document, list-materializing pipeline
interpreter that ``repro.docstore.aggregate`` replaced with a compiled
streaming executor. It is kept (not exported on any hot path) as the
*oracle*: ``tests/property/test_aggregate_oracle.py`` runs randomized
documents and pipelines through both implementations and requires
identical output.

Two deliberate behaviour fixes are shared with the compiled executor so
that the two stay comparable:

- group ids are bucketed by the canonical :func:`group_key` (equal
  dicts with different insertion order land in one group, where the old
  ``repr``-based key split them);
- ``$addToSet`` preserves first-seen order (as before), but the oracle
  keeps the O(n²) list scan — it is the specification, not a hot path.
"""

from __future__ import annotations

import copy
import math
from typing import Any, Dict, Iterable, List, Optional

from repro.docstore.aggregate import _safe_group_key
from repro.docstore.cursor import sort_documents
from repro.docstore.errors import QuerySyntaxError
from repro.docstore.query import get_path, is_missing, matches


def _resolve_expression(doc: Dict[str, Any], expression: Any) -> Any:
    """Evaluate an aggregation value expression against ``doc``."""
    if isinstance(expression, str) and expression.startswith("$"):
        value = get_path(doc, expression[1:])
        return None if is_missing(value) else value
    if isinstance(expression, dict):
        if len(expression) == 1:
            op, operand = next(iter(expression.items()))
            if op.startswith("$"):
                return _apply_expr_operator(doc, op, operand)
        return {k: _resolve_expression(doc, v) for k, v in expression.items()}
    if isinstance(expression, list):
        return [_resolve_expression(doc, e) for e in expression]
    return expression


def _numeric_args(doc: Dict[str, Any], operand: Any, op: str, arity: Optional[int]) -> List[float]:
    if not isinstance(operand, list):
        operand = [operand]
    if arity is not None and len(operand) != arity:
        raise QuerySyntaxError(f"{op} requires exactly {arity} arguments")
    values = [_resolve_expression(doc, e) for e in operand]
    result = []
    for value in values:
        if value is None:
            value = 0
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise QuerySyntaxError(f"{op} requires numeric arguments, got {value!r}")
        result.append(value)
    return result


def _apply_expr_operator(doc: Dict[str, Any], op: str, operand: Any) -> Any:
    if op == "$add":
        return sum(_numeric_args(doc, operand, op, None))
    if op == "$subtract":
        a, b = _numeric_args(doc, operand, op, 2)
        return a - b
    if op == "$multiply":
        result = 1.0
        for value in _numeric_args(doc, operand, op, None):
            result *= value
        return result
    if op == "$divide":
        a, b = _numeric_args(doc, operand, op, 2)
        if b == 0:
            raise QuerySyntaxError("$divide by zero")
        return a / b
    if op == "$mod":
        a, b = _numeric_args(doc, operand, op, 2)
        if b == 0:
            raise QuerySyntaxError("$mod by zero")
        return a % b
    if op == "$floor":
        (a,) = _numeric_args(doc, operand, op, 1)
        return math.floor(a)
    if op == "$ceil":
        (a,) = _numeric_args(doc, operand, op, 1)
        return math.ceil(a)
    if op == "$abs":
        (a,) = _numeric_args(doc, operand, op, 1)
        return abs(a)
    if op == "$size":
        value = _resolve_expression(doc, operand)
        if not isinstance(value, list):
            raise QuerySyntaxError(f"$size requires an array, got {value!r}")
        return len(value)
    if op == "$concat":
        if not isinstance(operand, list):
            raise QuerySyntaxError("$concat requires a list")
        parts = [_resolve_expression(doc, e) for e in operand]
        if any(p is None for p in parts):
            return None
        if not all(isinstance(p, str) for p in parts):
            raise QuerySyntaxError("$concat requires string arguments")
        return "".join(parts)
    if op == "$cond":
        if isinstance(operand, dict):
            branches = [operand.get("if"), operand.get("then"), operand.get("else")]
        elif isinstance(operand, list) and len(operand) == 3:
            branches = operand
        else:
            raise QuerySyntaxError("$cond requires [if, then, else]")
        condition = _resolve_expression(doc, branches[0])
        return _resolve_expression(doc, branches[1] if condition else branches[2])
    if op == "$ifNull":
        if not isinstance(operand, list) or len(operand) != 2:
            raise QuerySyntaxError("$ifNull requires [expr, fallback]")
        value = _resolve_expression(doc, operand[0])
        return value if value is not None else _resolve_expression(doc, operand[1])
    raise QuerySyntaxError(f"unknown expression operator {op!r}")


# -- group accumulators -------------------------------------------------------


class _Accumulator:
    """One accumulator instance within one group (buffer then reduce)."""

    def __init__(self, op: str, expression: Any) -> None:
        self.op = op
        self.expression = expression
        self.values: List[Any] = []

    def feed(self, doc: Dict[str, Any]) -> None:
        self.values.append(_resolve_expression(doc, self.expression))

    def result(self) -> Any:
        numeric = [
            v
            for v in self.values
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        ]
        if self.op == "$sum":
            return sum(numeric) if numeric else 0
        if self.op == "$avg":
            return sum(numeric) / len(numeric) if numeric else None
        if self.op == "$min":
            return min(numeric) if numeric else None
        if self.op == "$max":
            return max(numeric) if numeric else None
        if self.op == "$first":
            return self.values[0] if self.values else None
        if self.op == "$last":
            return self.values[-1] if self.values else None
        if self.op == "$push":
            return list(self.values)
        if self.op == "$addToSet":
            seen: List[Any] = []
            for value in self.values:
                if value not in seen:
                    seen.append(value)
            return seen
        if self.op == "$count":
            return len(self.values)
        raise QuerySyntaxError(f"unknown accumulator {self.op!r}")


_ACCUMULATOR_OPS = {
    "$sum",
    "$avg",
    "$min",
    "$max",
    "$first",
    "$last",
    "$push",
    "$addToSet",
    "$count",
}


def _stage_group(docs: List[Dict[str, Any]], spec: Dict[str, Any]) -> List[Dict[str, Any]]:
    if "_id" not in spec:
        raise QuerySyntaxError("$group requires an _id expression")
    id_expr = spec["_id"]
    accumulator_specs: Dict[str, tuple] = {}
    for field_name, acc in spec.items():
        if field_name == "_id":
            continue
        if not isinstance(acc, dict) or len(acc) != 1:
            raise QuerySyntaxError(
                f"$group field {field_name!r} must be a single-accumulator document"
            )
        op, expression = next(iter(acc.items()))
        if op not in _ACCUMULATOR_OPS:
            raise QuerySyntaxError(f"unknown accumulator {op!r}")
        accumulator_specs[field_name] = (op, expression)

    groups: Dict[Any, tuple] = {}  # canonical key -> (group id value, accumulators)
    order: List[Any] = []
    for doc in docs:
        group_id = None if id_expr is None else _resolve_expression(doc, id_expr)
        key = _safe_group_key(group_id)
        if key not in groups:
            accumulators = {
                name: _Accumulator(op, expression)
                for name, (op, expression) in accumulator_specs.items()
            }
            groups[key] = (group_id, accumulators)
            order.append(key)
        for accumulator in groups[key][1].values():
            accumulator.feed(doc)

    results = []
    for key in order:
        group_id, accumulators = groups[key]
        out: Dict[str, Any] = {"_id": group_id}
        for name, accumulator in accumulators.items():
            out[name] = accumulator.result()
        results.append(out)
    return results


def _stage_project(docs: List[Dict[str, Any]], spec: Dict[str, Any]) -> List[Dict[str, Any]]:
    if not spec:
        raise QuerySyntaxError("$project requires a non-empty spec")
    inclusions = {
        k for k, v in spec.items() if v in (1, True) and k != "_id"
    }
    exclusions = {k for k, v in spec.items() if v in (0, False)}
    computed = {
        k: v for k, v in spec.items() if not isinstance(v, bool) and v not in (0, 1)
    }
    if inclusions and (exclusions - {"_id"}):
        raise QuerySyntaxError("$project cannot mix inclusion and exclusion")
    results = []
    for doc in docs:
        if inclusions or computed:
            out: Dict[str, Any] = {}
            if spec.get("_id", 1) in (1, True) and "_id" in doc:
                out["_id"] = doc["_id"]
            for path in inclusions:
                value = get_path(doc, path)
                if not is_missing(value):
                    out[path] = copy.deepcopy(value)
            for path, expression in computed.items():
                out[path] = _resolve_expression(doc, expression)
        else:
            out = copy.deepcopy(doc)
            for path in exclusions:
                out.pop(path, None)
        results.append(out)
    return results


def _stage_add_fields(docs: List[Dict[str, Any]], spec: Dict[str, Any]) -> List[Dict[str, Any]]:
    results = []
    for doc in docs:
        out = copy.deepcopy(doc)
        for field_name, expression in spec.items():
            out[field_name] = _resolve_expression(doc, expression)
        results.append(out)
    return results


def _stage_unwind(docs: List[Dict[str, Any]], spec: Any) -> List[Dict[str, Any]]:
    if isinstance(spec, str):
        path = spec
        keep_empty = False
    elif isinstance(spec, dict) and "path" in spec:
        path = spec["path"]
        keep_empty = bool(spec.get("preserveNullAndEmptyArrays", False))
    else:
        raise QuerySyntaxError("$unwind requires a '$path' string or {path: ...}")
    if not path.startswith("$"):
        raise QuerySyntaxError("$unwind path must start with '$'")
    field_path = path[1:]
    results = []
    for doc in docs:
        value = get_path(doc, field_path)
        if is_missing(value) or value is None or (isinstance(value, list) and not value):
            if keep_empty:
                results.append(copy.deepcopy(doc))
            continue
        elements = value if isinstance(value, list) else [value]
        for element in elements:
            out = copy.deepcopy(doc)
            out[field_path] = copy.deepcopy(element)
            results.append(out)
    return results


def _stage_bucket(docs: List[Dict[str, Any]], spec: Dict[str, Any]) -> List[Dict[str, Any]]:
    """MongoDB's $bucket: histogram documents by boundary intervals."""
    group_by = spec.get("groupBy")
    boundaries = spec.get("boundaries")
    if not isinstance(group_by, str) or not group_by.startswith("$"):
        raise QuerySyntaxError("$bucket requires a '$field' groupBy")
    if (
        not isinstance(boundaries, list)
        or len(boundaries) < 2
        or boundaries != sorted(boundaries)
    ):
        raise QuerySyntaxError("$bucket requires sorted boundaries (>= 2)")
    has_default = "default" in spec
    default_key = spec.get("default")
    output_spec = spec.get("output", {"count": {"$sum": 1}})

    buckets: Dict[Any, List[Dict[str, Any]]] = {}
    order: List[Any] = list(boundaries[:-1]) + ([default_key] if has_default else [])
    for key in order:
        buckets.setdefault(key, [])
    for doc in docs:
        value = _resolve_expression(doc, group_by)
        placed = False
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            for low, high in zip(boundaries, boundaries[1:]):
                if low <= value < high:
                    buckets[low].append(doc)
                    placed = True
                    break
        if not placed:
            if not has_default:
                raise QuerySyntaxError(
                    f"$bucket value {value!r} outside boundaries and no default"
                )
            buckets[default_key].append(doc)

    results = []
    emitted = set()
    for key in order:
        if id(buckets[key]) in emitted:
            continue
        emitted.add(id(buckets[key]))
        members = buckets[key]
        if not members:
            continue
        out: Dict[str, Any] = {"_id": key}
        for name, accumulator in output_spec.items():
            if not isinstance(accumulator, dict) or len(accumulator) != 1:
                raise QuerySyntaxError("$bucket output must use accumulators")
            op, expression = next(iter(accumulator.items()))
            acc = _Accumulator(op, expression)
            for doc in members:
                acc.feed(doc)
            out[name] = acc.result()
        results.append(out)
    return results


def _stage_sort_by_count(docs: List[Dict[str, Any]], spec: Any) -> List[Dict[str, Any]]:
    """MongoDB's $sortByCount: group by expression, count, sort desc."""
    if not (isinstance(spec, str) and spec.startswith("$")) and not isinstance(
        spec, dict
    ):
        raise QuerySyntaxError("$sortByCount requires a '$field' or expression")
    grouped = _stage_group(docs, {"_id": spec, "count": {"$sum": 1}})
    return sorted(grouped, key=lambda d: (-d["count"], repr(d["_id"])))


def naive_aggregate(
    documents: Iterable[Dict[str, Any]], pipeline: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Run ``pipeline`` over ``documents`` with the reference interpreter."""
    docs: List[Dict[str, Any]] = list(documents)
    for stage in pipeline:
        if not isinstance(stage, dict) or len(stage) != 1:
            raise QuerySyntaxError("each pipeline stage must be a single-key dict")
        op, spec = next(iter(stage.items()))
        if op == "$match":
            docs = [d for d in docs if matches(d, spec)]
        elif op == "$group":
            docs = _stage_group(docs, spec)
        elif op == "$project":
            docs = _stage_project(docs, spec)
        elif op == "$addFields":
            docs = _stage_add_fields(docs, spec)
        elif op == "$sort":
            docs = sort_documents(docs, list(spec.items()))
        elif op == "$limit":
            if not isinstance(spec, int) or spec < 0:
                raise QuerySyntaxError("$limit requires a non-negative int")
            docs = docs[:spec]
        elif op == "$skip":
            if not isinstance(spec, int) or spec < 0:
                raise QuerySyntaxError("$skip requires a non-negative int")
            docs = docs[spec:]
        elif op == "$unwind":
            docs = _stage_unwind(docs, spec)
        elif op == "$bucket":
            docs = _stage_bucket(docs, spec)
        elif op == "$sortByCount":
            docs = _stage_sort_by_count(docs, spec)
        elif op == "$count":
            if not isinstance(spec, str) or not spec:
                raise QuerySyntaxError("$count requires a field name")
            docs = [{spec: len(docs)}]
        else:
            raise QuerySyntaxError(f"unknown pipeline stage {op!r}")
    return [copy.deepcopy(d) for d in docs]
