"""Collections: documents, CRUD, indexes, and the query planner.

Documents are dicts with a unique ``_id`` (auto-assigned when absent).
The planner uses declared indexes for top-level equality and range
predicates, intersects candidate sets across indexed fields, and verifies
every candidate against the full filter (indexes only narrow, they never
decide).

Planning is cached per **filter shape**: the structure of a filter (which
paths, which operators) determines which indexes apply, independent of
the literal values, so repeated queries of the same shape skip predicate
extraction and index selection entirely. The cache is invalidated when
indexes are created or dropped.

Thread safety mirrors MongoDB's document-level guarantees at collection
granularity: a reader-friendly readers/writer lock lets any number of
dashboard queries run concurrently while CRUD and index maintenance are
exclusive; the plan cache and the read-path counters have their own
small mutex (acquired *after* the RW lock, never before) so concurrent
readers do not tear the shared LRU.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple, Union

from repro import concurrency
from repro.docstore.clone import json_clone
from repro.docstore.cursor import Cursor
from repro.docstore.errors import DocStoreError, DuplicateKeyError, IndexError_
from repro.docstore.index import HashIndex, SortedIndex
from repro.docstore.query import (
    _is_operator_doc,
    extract_equality_predicates,
    extract_range_predicates,
    matches,
)
from repro.docstore.update import apply_update

#: Bound on distinct cached filter shapes per collection.
PLAN_CACHE_SIZE = 256

_UNCACHED = object()


def _filter_shape(filter_doc: Dict[str, Any]) -> Optional[Tuple[Any, ...]]:
    """Hashable shape of a filter, or None when it cannot be summarized.

    Two filters with the same shape compile to the same plan: the same
    index choices apply, only the looked-up values differ.
    """
    parts = []
    for key, condition in filter_doc.items():
        if not isinstance(key, str):
            return None
        if key.startswith("$"):
            parts.append((key, "$logical"))
        elif isinstance(condition, dict):
            if _is_operator_doc(condition):
                parts.append((key, tuple(condition.keys())))
            else:
                parts.append((key, "$dictlit"))
        else:
            parts.append((key, "$lit"))
    return tuple(parts)


def _range_bounds(condition: Dict[str, Any]) -> Tuple[Any, bool, Any, bool]:
    """(low, low_inclusive, high, high_inclusive) of an operator doc."""
    low: Any = None
    low_inc = True
    high: Any = None
    high_inc = True
    for op, operand in condition.items():
        if op == "$gt":
            low, low_inc = operand, False
        elif op == "$gte":
            low, low_inc = operand, True
        elif op == "$lt":
            high, high_inc = operand, False
        elif op == "$lte":
            high, high_inc = operand, True
    return low, low_inc, high, high_inc


@dataclass
class CollectionStats:
    """Lifetime counters, consumed by GoFlow analytics."""

    inserts: int = 0
    updates: int = 0
    deletes: int = 0
    queries: int = 0
    index_hits: int = 0
    full_scans: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0


@dataclass
class UpdateResult:
    """Outcome of an update operation."""

    matched: int = 0
    modified: int = 0
    upserted_id: Optional[Any] = None


class AggregationResult(list):
    """Pipeline output plus how the leading ``$match`` was executed.

    Behaves exactly like the plain list ``aggregate`` used to return;
    ``.explain`` carries ``{"strategy": "index"|"scan", "pushdown":
    bool, "candidates": int|None, "examined_share": float|None}`` so
    tests (and operators) can assert that a figure query actually hit
    an index instead of scanning the store.
    """

    __slots__ = ("explain",)

    def __init__(self, rows: Iterable[Dict[str, Any]], explain: Dict[str, Any]) -> None:
        super().__init__(rows)
        self.explain = explain


class Collection:
    """A named set of documents with CRUD, indexes and a planner."""

    def __init__(
        self,
        name: str,
        clock: Optional[Callable[[], float]] = None,
        journal: Optional[Any] = None,
    ) -> None:
        if not name:
            raise DocStoreError("collection name must be non-empty")
        self.name = name
        self._clock = clock
        self._docs: Dict[Any, Dict[str, Any]] = {}
        self._next_id = 1
        #: optional write-ahead log (see repro.docstore.wal): every
        #: mutation journals a record *before* touching in-memory state.
        self._journal = journal
        self._hash_indexes: Dict[str, HashIndex] = {}
        self._sorted_indexes: Dict[str, SortedIndex] = {}
        self._plan_cache: Dict[Tuple[Any, ...], Any] = {}
        #: readers/writer lock: queries share, CRUD + index DDL exclude.
        self._rw = concurrency.make_rwlock()
        #: guards the plan cache and read-path stat counters; always
        #: acquired after (never before) the RW lock.
        self._mutex = concurrency.make_rlock()
        #: optional columnar mirror (see enable_columnar); its own lock
        #: is always acquired after the RW lock, never before.
        self._columnar: Optional[Any] = None
        self.stats = CollectionStats()

    # -- basic properties -----------------------------------------------------

    def __len__(self) -> int:
        with self._rw.read():
            return len(self._docs)

    def count(self, filter_doc: Optional[Dict[str, Any]] = None) -> int:
        """Number of documents matching ``filter_doc`` (all when None)."""
        with self._rw.read():
            if not filter_doc:
                return len(self._docs)
            return sum(1 for _ in self._iter_matching(filter_doc))

    def iter_documents(self) -> Iterable[Dict[str, Any]]:
        """A stable snapshot of the live documents in insertion order.

        Read-only contract: callers must not mutate the listed dicts
        (updates swap whole document objects, so the snapshot stays
        internally consistent even while writers proceed). Used by folds
        that need one cheap pass (materialized analytics rebuilds) —
        does not count as a query.
        """
        with self._rw.read():
            return list(self._docs.values())

    def read_locked(self):
        """The collection's shared read view, as a context manager.

        Lets multi-step readers (the materialized analytics rebuild)
        take one atomic look at the write counters *and* the documents,
        with no write able to land in between.
        """
        return self._rw.read()

    def write_marker(self) -> Tuple[int, int, int]:
        """The lifetime ``(inserts, updates, deletes)`` counters.

        Taken under the read lock, so the triple can never expose a
        half-applied write.
        """
        with self._rw.read():
            stats = self.stats
            return (stats.inserts, stats.updates, stats.deletes)

    def stats_snapshot(self) -> CollectionStats:
        """A coherent copy of the counters (no mid-write torn reads)."""
        with self._rw.read():
            with self._mutex:
                return replace(self.stats)

    # -- durability -----------------------------------------------------------

    def attach_journal(self, journal: Optional[Any]) -> None:
        """Attach (or detach) the write-ahead log this collection logs to."""
        with self._rw.write():
            self._journal = journal

    def _log(self, record: Dict[str, Any]) -> None:
        """Journal ``record`` ahead of the mutation it describes.

        Called under the write lock, before in-memory state moves: if
        the append fails (unserializable document, dead disk) the
        operation is aborted with memory untouched. The journal's own
        lock is always acquired after the collection lock, never
        before.
        """
        if self._journal is not None:
            record["c"] = self.name
            self._journal.log(record)

    def _take_id(self) -> int:
        doc_id = self._next_id
        self._next_id += 1
        return doc_id

    def _note_id(self, doc_id: Any) -> None:
        # explicit integer _ids (snapshot/WAL replay, callers that
        # stamp their own) advance the counter past them, so later
        # auto-assigned ids can never collide with a restored document.
        if isinstance(doc_id, int) and not isinstance(doc_id, bool):
            if doc_id >= self._next_id:
                self._next_id = doc_id + 1

    # -- columnar mirror ---------------------------------------------------------

    def enable_columnar(self, fields: Iterable[str]):
        """Attach a columnar mirror over ``fields`` (replacing any prior).

        The mirror keeps per-field numpy arrays in step with inserts and
        rebuilds lazily after updates/deletes; ``aggregate`` dispatches
        covered pipelines to its vectorized kernels. Requires numpy —
        without it the mirror stays attached but disabled, and every
        pipeline takes the row engines.
        """
        from repro.docstore.columnar import ColumnarMirror

        with self._rw.write():
            mirror = ColumnarMirror(self, fields)
            self._columnar = mirror
            return mirror

    def columnar_info(self) -> Dict[str, Any]:
        """Mirror health for ``middleware_stats()``; safe with no mirror."""
        mirror = self._columnar
        if mirror is None:
            return {"enabled": False, "reason": "no mirror attached", "fields": []}
        return mirror.info()

    # -- index management --------------------------------------------------------

    def create_index(
        self,
        path: str,
        kind: str = "sorted",
        unique: bool = False,
        exist_ok: bool = False,
    ):
        """Declare an index on ``path``.

        Args:
            path: dotted field path.
            kind: ``"hash"`` (equality only, supports unique) or
                ``"sorted"`` (equality + range).
            unique: enforce unique values (hash indexes only).
            exist_ok: return the existing index instead of raising when
                an index of this kind is already declared on ``path``
                (recovery and re-initialization paths).
        """
        with self._rw.write():
            if kind == "hash":
                existing = self._hash_indexes.get(path)
                if existing is not None:
                    if exist_ok and existing.unique == unique:
                        return existing
                    raise IndexError_(f"hash index on {path!r} already exists")
            elif kind == "sorted":
                if unique:
                    raise IndexError_("unique is only supported on hash indexes")
                if path in self._sorted_indexes:
                    if exist_ok:
                        return self._sorted_indexes[path]
                    raise IndexError_(f"sorted index on {path!r} already exists")
            else:
                raise IndexError_(f"unknown index kind {kind!r}")
            self._log(
                {"op": "create_index", "path": path, "kind": kind, "unique": unique}
            )
            if kind == "hash":
                index: Union[HashIndex, SortedIndex] = HashIndex(path, unique=unique)
            else:
                index = SortedIndex(path)
            for doc_id, doc in self._docs.items():
                index.insert(doc_id, doc)
            if kind == "hash":
                self._hash_indexes[path] = index
            else:
                self._sorted_indexes[path] = index
            self._clear_plan_cache()
            return index

    def drop_index(self, path: str) -> None:
        """Remove the index(es) declared on ``path``."""
        with self._rw.write():
            if path not in self._hash_indexes and path not in self._sorted_indexes:
                raise IndexError_(f"no index on {path!r}")
            self._log({"op": "drop_index", "path": path})
            self._hash_indexes.pop(path, None)
            self._sorted_indexes.pop(path, None)
            self._clear_plan_cache()

    def _clear_plan_cache(self) -> None:
        with self._mutex:
            self._plan_cache.clear()

    def index_paths(self) -> List[str]:
        """Paths of all declared indexes."""
        with self._rw.read():
            return sorted(set(self._hash_indexes) | set(self._sorted_indexes))

    def index_specs(self) -> List[Dict[str, Any]]:
        """Declared indexes as ``{"path", "kind", "unique"}`` specs.

        The public form of the index definitions — snapshotting and
        observability read this instead of reaching into the private
        index maps. Sorted by path, hash before sorted on a shared
        path; round-trips through ``create_index``.
        """
        with self._rw.read():
            specs: List[Dict[str, Any]] = []
            for path in sorted(set(self._hash_indexes) | set(self._sorted_indexes)):
                if path in self._hash_indexes:
                    specs.append(
                        {
                            "path": path,
                            "kind": "hash",
                            "unique": self._hash_indexes[path].unique,
                        }
                    )
                if path in self._sorted_indexes:
                    specs.append({"path": path, "kind": "sorted", "unique": False})
            return specs

    # -- insert ---------------------------------------------------------------------

    def insert_one(
        self,
        document: Dict[str, Any],
        copy: bool = True,
        wal_meta: Optional[Dict[str, Any]] = None,
        _journal: bool = True,
    ) -> Any:
        """Insert a document; returns its ``_id``.

        With ``copy=False`` the collection takes ownership of
        ``document`` instead of cloning it — only for callers that built
        the dict themselves and never touch it again (the ingest path).

        ``wal_meta`` rides along in the durability journal record (the
        ingest path stores the dedup-ledger keys there so recovery can
        rebuild exactly-once state atomically with the insert).
        ``_journal=False`` is internal: sub-operations of an already
        journaled op (the upsert insert) must not journal twice.
        """
        if not isinstance(document, dict):
            raise DocStoreError(
                f"document must be a dict, got {type(document).__name__}"
            )
        doc = json_clone(document) if copy else document
        with self._rw.write():
            doc_id = doc.setdefault("_id", self._take_id())
            self._note_id(doc_id)
            if doc_id in self._docs:
                raise DuplicateKeyError(f"duplicate _id {doc_id!r} in {self.name!r}")
            if _journal:
                record: Dict[str, Any] = {"op": "insert", "docs": [doc]}
                if wal_meta:
                    record["meta"] = wal_meta
                self._log(record)
            self._index_insert(doc_id, doc)
            self._docs[doc_id] = doc
            self.stats.inserts += 1
            if self._columnar is not None:
                self._columnar.on_insert(doc)
            return doc_id

    def insert_many(
        self,
        documents: Iterable[Dict[str, Any]],
        copy: bool = True,
        wal_meta: Optional[Dict[str, Any]] = None,
    ) -> List[Any]:
        """Insert a batch atomically; returns ids in input order.

        The write lock is taken once and the write marker advances once
        (by the batch size), so downstream marker watchers — the
        materialized analytics and the columnar mirror — see one batch
        append instead of N invalidating single steps. Sorted-index
        maintenance is bulk-loaded per batch. On any failure (duplicate
        ``_id``, unique-index violation) the already-placed prefix is
        rolled back and nothing is inserted. The durability journal
        sees the whole batch as one record, appended (with ``wal_meta``)
        before any in-memory state moves.
        """
        docs: List[Dict[str, Any]] = []
        for document in documents:
            if not isinstance(document, dict):
                raise DocStoreError(
                    f"document must be a dict, got {type(document).__name__}"
                )
            docs.append(json_clone(document) if copy else document)
        if not docs:
            return []
        with self._rw.write():
            # assign ids and pre-check _id collisions before journaling:
            # the journal must describe the batch exactly as it will be
            # applied, and a doomed batch should not reach the log.
            seen: Set[Any] = set()
            for doc in docs:
                doc_id = doc.setdefault("_id", self._take_id())
                self._note_id(doc_id)
                if doc_id in self._docs or doc_id in seen:
                    raise DuplicateKeyError(
                        f"duplicate _id {doc_id!r} in {self.name!r}"
                    )
                try:
                    seen.add(doc_id)
                except TypeError:
                    raise DocStoreError(f"_id must be hashable, got {doc_id!r}")
            record: Dict[str, Any] = {"op": "insert_many", "docs": docs}
            if wal_meta:
                record["meta"] = wal_meta
            self._log(record)
            ids: List[Any] = []
            placed: List[Tuple[Any, Dict[str, Any]]] = []
            # non-unique hash indexes are bulk-loaded after placement
            # (rollback tolerates missing entries); unique ones go
            # per-document so a violation is caught — and unwound —
            # exactly where it happens.
            unique_hash = [ix for ix in self._hash_indexes.values() if ix.unique]
            bulk_hash = [ix for ix in self._hash_indexes.values() if not ix.unique]
            try:
                for doc in docs:
                    doc_id = doc["_id"]
                    inserted_hash: List[HashIndex] = []
                    try:
                        for index in unique_hash:
                            index.insert(doc_id, doc)
                            inserted_hash.append(index)
                    except DuplicateKeyError:
                        for index in inserted_hash:
                            index.remove(doc_id, doc)
                        raise
                    self._docs[doc_id] = doc
                    placed.append((doc_id, doc))
                    ids.append(doc_id)
                for index in bulk_hash:
                    index.insert_many(placed)
            except Exception:
                # remove() tolerates absent entries, so the sweep covers
                # both a placement failure and a partial bulk load.
                for doc_id, doc in reversed(placed):
                    del self._docs[doc_id]
                    for index in self._hash_indexes.values():
                        index.remove(doc_id, doc)
                raise
            for sindex in self._sorted_indexes.values():
                sindex.insert_many(placed)
            self.stats.inserts += len(ids)
            if self._columnar is not None:
                self._columnar.on_insert_batch(docs)
            return ids

    # -- find -----------------------------------------------------------------------

    def find(self, filter_doc: Optional[Dict[str, Any]] = None) -> Cursor:
        """Documents matching ``filter_doc`` as a chainable cursor."""
        with self._rw.read():
            with self._mutex:
                self.stats.queries += 1
            return Cursor(list(self._iter_matching(filter_doc or {})))

    def find_one(
        self, filter_doc: Optional[Dict[str, Any]] = None
    ) -> Optional[Dict[str, Any]]:
        """The first matching document, or None."""
        with self._rw.read():
            for doc in self._iter_matching(filter_doc or {}):
                return json_clone(doc)
            return None

    def distinct(self, path: str, filter_doc: Optional[Dict[str, Any]] = None) -> List[Any]:
        """Sorted distinct (hashable) values of ``path`` across matches."""
        from repro.docstore.query import get_path, is_missing

        values: Set[Any] = set()
        with self._rw.read():
            matched = list(self._iter_matching(filter_doc or {}))
        for doc in matched:
            resolved = get_path(doc, path)
            if is_missing(resolved):
                continue
            candidates = resolved if isinstance(resolved, list) else [resolved]
            for value in candidates:
                try:
                    values.add(value)
                except TypeError:
                    continue
        return sorted(values, key=lambda v: (str(type(v)), str(v)))

    # -- update ---------------------------------------------------------------------

    def update_one(
        self,
        filter_doc: Dict[str, Any],
        update: Dict[str, Any],
        upsert: bool = False,
    ) -> UpdateResult:
        """Apply ``update`` to the first match (optionally upserting)."""
        return self._update(filter_doc, update, multi=False, upsert=upsert)

    def update_many(
        self, filter_doc: Dict[str, Any], update: Dict[str, Any]
    ) -> UpdateResult:
        """Apply ``update`` to every match."""
        return self._update(filter_doc, update, multi=True, upsert=False)

    def replace_one(
        self,
        filter_doc: Dict[str, Any],
        replacement: Dict[str, Any],
        upsert: bool = False,
    ) -> UpdateResult:
        """Replace the first match with ``replacement``."""
        if any(k.startswith("$") for k in replacement):
            raise DocStoreError("replacement document cannot contain operators")
        return self._update(filter_doc, replacement, multi=False, upsert=upsert)

    def _update(
        self,
        filter_doc: Dict[str, Any],
        update: Dict[str, Any],
        multi: bool,
        upsert: bool,
        now: Any = _UNCACHED,
    ) -> UpdateResult:
        if now is _UNCACHED:
            now = self._clock() if self._clock else None
        with self._rw.write():
            result = UpdateResult()
            # updates journal *logically* (filter + operators + clock
            # value): replay onto the same pre-state re-derives the same
            # post-state, and pinning ``now`` keeps $currentDate stable.
            self._log(
                {
                    "op": "update",
                    "filter": filter_doc,
                    "update": update,
                    "multi": multi,
                    "upsert": upsert,
                    "now": now,
                }
            )
            matched_ids = [doc["_id"] for doc in self._iter_matching(filter_doc)]
            for doc_id in matched_ids:
                old = self._docs[doc_id]
                new = apply_update(old, update, now=now)
                result.matched += 1
                if new != old:
                    self._index_remove(doc_id, old)
                    try:
                        self._index_insert(doc_id, new)
                    except DuplicateKeyError:
                        self._index_insert(doc_id, old)  # roll back
                        raise
                    self._docs[doc_id] = new
                    result.modified += 1
                if not multi:
                    break
            if result.matched == 0 and upsert:
                seed = extract_equality_predicates(filter_doc)
                base = {k: v for k, v in seed.items() if "." not in k}
                new_doc = apply_update(base, update, now=now)
                # the update record already covers the upsert: replaying
                # it re-runs this same branch, so the nested insert must
                # not journal a second copy.
                result.upserted_id = self.insert_one(new_doc, _journal=False)
            else:
                self.stats.updates += result.modified
                if result.modified and self._columnar is not None:
                    self._columnar.invalidate()
            return result

    # -- delete ---------------------------------------------------------------------

    def delete_one(self, filter_doc: Dict[str, Any]) -> int:
        """Delete the first match; returns 0 or 1."""
        with self._rw.write():
            self._log({"op": "delete", "filter": filter_doc, "multi": False})
            for doc in self._iter_matching(filter_doc):
                self._remove(doc["_id"])
                return 1
            return 0

    def delete_many(self, filter_doc: Dict[str, Any]) -> int:
        """Delete every match; returns the count."""
        with self._rw.write():
            self._log({"op": "delete", "filter": filter_doc, "multi": True})
            ids = [doc["_id"] for doc in self._iter_matching(filter_doc)]
            for doc_id in ids:
                self._remove(doc_id)
            return len(ids)

    def drop(self) -> None:
        """Remove every document (indexes stay declared)."""
        with self._rw.write():
            self._log({"op": "drop_docs"})
            self._docs.clear()
            for index in self._hash_indexes.values():
                index._map.clear()
            for index in self._sorted_indexes.values():
                index._partitions.clear()
            # drop does not move the write marker, so the mirror cannot
            # detect it via the staleness protocol — invalidate explicitly
            if self._columnar is not None:
                self._columnar.invalidate()

    # -- aggregation convenience -------------------------------------------------------

    def aggregate(self, pipeline: List[Dict[str, Any]]) -> "AggregationResult":
        """Run an aggregation pipeline over this collection.

        Dispatch order: a columnar mirror covering the whole pipeline
        wins (``strategy: "columnar"``, with coverage details under the
        ``columnar`` explain key); otherwise a leading ``$match`` stage
        is pushed down into the planner: when its predicates hit
        declared indexes, only the candidate documents are fed to the
        compiled pipeline (and the stage is skipped inside it), so
        figure queries like ``model == X`` touch a fraction of the
        store. The result is a plain list subclass whose ``.explain``
        records the chosen strategy.
        """
        from repro.docstore.aggregate import compile_pipeline

        compiled = compile_pipeline(pipeline)
        match_spec = compiled.leading_match
        explain: Dict[str, Any] = {
            "strategy": "scan",
            "pushdown": False,
            "candidates": None,
            "examined_share": None,
        }
        mirror = self._columnar
        with self._rw.read():
            if mirror is not None:
                rows, detail, matched = mirror.execute(pipeline)
                explain["columnar"] = detail
                if rows is not None:
                    total = len(self._docs)
                    explain.update(
                        strategy="columnar",
                        candidates=matched,
                        examined_share=(matched / total) if total else 0.0,
                    )
                    return AggregationResult(rows, explain)
            if match_spec is not None:
                candidate_ids = self._plan(match_spec)
                if candidate_ids is not None:
                    with self._mutex:
                        self.stats.index_hits += 1
                    explain.update(
                        strategy="index",
                        pushdown=True,
                        candidates=len(candidate_ids),
                        examined_share=(
                            len(candidate_ids) / len(self._docs) if self._docs else 0.0
                        ),
                    )
                    ordered = sorted(
                        candidate_ids, key=lambda i: (str(type(i)), str(i))
                    )
                    documents = (
                        doc
                        for doc in (self._docs.get(doc_id) for doc_id in ordered)
                        if doc is not None and matches(doc, match_spec)
                    )
                    return AggregationResult(
                        compiled.run(documents, skip_leading_match=True), explain
                    )
                with self._mutex:
                    self.stats.full_scans += 1
            return AggregationResult(
                compiled.run(list(self._docs.values())), explain
            )

    def explain(self, filter_doc: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """How the planner would execute ``filter_doc``.

        Returns ``{"strategy": "index"|"scan", "candidates": int|None,
        "examined_share": float|None}`` without touching the query
        counters — the debugging affordance every real store ships.
        """
        filter_doc = filter_doc or {}
        with self._rw.read():
            candidates = self._plan(filter_doc)
            if candidates is None:
                return {"strategy": "scan", "candidates": None, "examined_share": None}
            share = len(candidates) / len(self._docs) if self._docs else 0.0
            return {
                "strategy": "index",
                "candidates": len(candidates),
                "examined_share": share,
            }

    # -- planner & internals ---------------------------------------------------------

    def _iter_matching(self, filter_doc: Dict[str, Any]):
        # callers hold the RW lock (read or write); counter bumps take
        # the small mutex so concurrent readers do not lose increments.
        candidate_ids = self._plan(filter_doc)
        if candidate_ids is None:
            with self._mutex:
                self.stats.full_scans += 1
            for doc in list(self._docs.values()):
                if matches(doc, filter_doc):
                    yield doc
        else:
            with self._mutex:
                self.stats.index_hits += 1
            for doc_id in sorted(candidate_ids, key=lambda i: (str(type(i)), str(i))):
                doc = self._docs.get(doc_id)
                if doc is not None and matches(doc, filter_doc):
                    yield doc

    def _plan(self, filter_doc: Dict[str, Any]) -> Optional[Set[Any]]:
        """Candidate ids from indexes, or None to force a full scan."""
        if not filter_doc:
            return None
        steps = self._plan_steps(filter_doc)
        if steps is None:
            return None
        candidates: Optional[Set[Any]] = None
        for kind, path, index in steps:
            if kind == "id":
                value = filter_doc["_id"]
                if isinstance(value, dict):
                    value = value["$eq"]
                return {value} if value in self._docs else set()
            if kind == "eq":
                value = filter_doc[path]
                if isinstance(value, dict):
                    value = value["$eq"]
                hits = index.lookup(value)
            else:  # "range"
                low, low_inc, high, high_inc = _range_bounds(filter_doc[path])
                hits = index.range(low, low_inc, high, high_inc)
            candidates = hits if candidates is None else candidates & hits
            if not candidates:
                return set()
        return candidates

    def _plan_steps(self, filter_doc: Dict[str, Any]):
        """The (cached) compiled plan for a filter: index steps or None.

        The plan is looked up by filter shape; literal values are read
        back out of the concrete filter at execution time.
        """
        shape = _filter_shape(filter_doc)
        if shape is None:
            return self._compile_plan(filter_doc)
        with self._mutex:
            steps = self._plan_cache.get(shape, _UNCACHED)
            if steps is not _UNCACHED:
                self.stats.plan_cache_hits += 1
                return steps
            self.stats.plan_cache_misses += 1
        steps = self._compile_plan(filter_doc)
        with self._mutex:
            if shape not in self._plan_cache:
                if len(self._plan_cache) >= PLAN_CACHE_SIZE:
                    self._plan_cache.pop(next(iter(self._plan_cache)))
                self._plan_cache[shape] = steps
        return steps

    def _compile_plan(self, filter_doc: Dict[str, Any]):
        """Which index steps apply to filters of this shape, or None."""
        equalities = extract_equality_predicates(filter_doc)
        ranges = extract_range_predicates(filter_doc)
        if "_id" in equalities:
            return (("id", "_id", None),)
        steps = []
        for path in equalities:
            index: Optional[Union[HashIndex, SortedIndex]] = self._hash_indexes.get(
                path
            ) or self._sorted_indexes.get(path)
            if index is not None:
                steps.append(("eq", path, index))
        for path in ranges:
            sorted_index = self._sorted_indexes.get(path)
            if sorted_index is not None:
                steps.append(("range", path, sorted_index))
        return tuple(steps) if steps else None

    def _index_insert(self, doc_id: Any, doc: Dict[str, Any]) -> None:
        inserted: List[HashIndex] = []
        try:
            for index in self._hash_indexes.values():
                index.insert(doc_id, doc)
                inserted.append(index)
        except DuplicateKeyError:
            for index in inserted:
                index.remove(doc_id, doc)
            raise
        for sindex in self._sorted_indexes.values():
            sindex.insert(doc_id, doc)

    def _index_remove(self, doc_id: Any, doc: Dict[str, Any]) -> None:
        for index in self._hash_indexes.values():
            index.remove(doc_id, doc)
        for sindex in self._sorted_indexes.values():
            sindex.remove(doc_id, doc)

    def _remove(self, doc_id: Any) -> None:
        doc = self._docs.pop(doc_id)
        self._index_remove(doc_id, doc)
        self.stats.deletes += 1
        if self._columnar is not None:
            self._columnar.invalidate()
