"""Secondary indexes.

Two index kinds back the query planner:

- :class:`HashIndex` — equality lookups, optional uniqueness;
- :class:`SortedIndex` — range scans via binary search over a sorted
  key list (``bisect``), the stand-in for MongoDB's B-tree.

Indexes map a field path to sets of document ids. Documents whose
indexed field is missing are not indexed (sparse behaviour); the planner
therefore only uses an index when the predicate implies field presence
(equality/range do).
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.docstore.errors import DuplicateKeyError, IndexError_
from repro.docstore.query import get_path, is_missing


_ABSENT = object()


def _index_keys(document: Dict[str, Any], path: str, simple: bool = False) -> List[Any]:
    """Keys under which a document is indexed for ``path``.

    Array fields produce one key per element (multikey index).
    Unhashable values (sub-documents) are not indexed. ``simple`` marks a
    dot-free path, resolved with a plain dict lookup instead of the full
    path walker (the ingest hot path: every write touches every index).
    """
    if simple:
        resolved = document.get(path, _ABSENT)
        if resolved is _ABSENT:
            return []
    else:
        resolved = get_path(document, path)
        if is_missing(resolved):
            return []
    if not isinstance(resolved, list):
        try:
            hash(resolved)
        except TypeError:
            return []
        return [resolved]
    keys = []
    for value in resolved:
        try:
            hash(value)
        except TypeError:
            continue
        keys.append(value)
    return keys


class HashIndex:
    """Equality index; optionally unique."""

    def __init__(self, path: str, unique: bool = False) -> None:
        if not path:
            raise IndexError_("index path must be non-empty")
        self.path = path
        self.unique = unique
        self._simple = "." not in path
        self._map: Dict[Any, Set[Any]] = {}

    def insert(self, doc_id: Any, document: Dict[str, Any]) -> None:
        """Index ``document`` under ``doc_id``; enforces uniqueness."""
        keys = _index_keys(document, self.path, self._simple)
        if self.unique:
            for key in keys:
                existing = self._map.get(key)
                if existing and existing != {doc_id}:
                    raise DuplicateKeyError(
                        f"duplicate value {key!r} for unique index on {self.path!r}"
                    )
        for key in keys:
            self._map.setdefault(key, set()).add(doc_id)

    def insert_many(self, entries: List[Tuple[Any, Dict[str, Any]]]) -> None:
        """Bulk-load ``(doc_id, document)`` pairs; non-unique only.

        Equivalent to :meth:`insert` per entry, with the common case —
        a dot-free path holding a hashable scalar — inlined to a dict
        probe per document. Callers must not use this on unique
        indexes: per-document uniqueness enforcement (and its exact
        rollback position) is :meth:`insert`'s job.
        """
        if self.unique:
            raise IndexError_(
                f"insert_many is not valid on unique index {self.path!r}"
            )
        mapping = self._map
        path = self.path
        simple = self._simple
        parts = path.split(".")
        two_level = len(parts) == 2
        for doc_id, document in entries:
            value = _ABSENT
            if simple:
                value = document.get(path, _ABSENT)
                if value is _ABSENT:
                    continue
            elif two_level:
                outer = document.get(parts[0], _ABSENT)
                if outer is _ABSENT:
                    continue
                if outer.__class__ is dict:
                    value = outer.get(parts[1], _ABSENT)
                    if value is _ABSENT:
                        continue
            if value is not _ABSENT:
                cls = value.__class__
                if cls is str or cls is int or cls is float or cls is bool or (
                    value is None
                ):
                    bucket = mapping.get(value)
                    if bucket is None:
                        mapping[value] = {doc_id}
                    else:
                        bucket.add(doc_id)
                    continue
            for key in _index_keys(document, path, simple):
                mapping.setdefault(key, set()).add(doc_id)

    def remove(self, doc_id: Any, document: Dict[str, Any]) -> None:
        """Drop ``document``'s entries."""
        for key in _index_keys(document, self.path, self._simple):
            bucket = self._map.get(key)
            if bucket is not None:
                bucket.discard(doc_id)
                if not bucket:
                    del self._map[key]

    def lookup(self, value: Any) -> Set[Any]:
        """Document ids whose field equals ``value``."""
        try:
            return set(self._map.get(value, set()))
        except TypeError:
            return set()

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._map.values())


class SortedIndex:
    """Range index over orderable keys.

    Keys of mixed incomparable types are segregated per type name so the
    sort never raises; range queries only consult the partition matching
    the bound's type.
    """

    def __init__(self, path: str) -> None:
        if not path:
            raise IndexError_("index path must be non-empty")
        self.path = path
        self._simple = "." not in path
        # type name -> (sorted key list, parallel list of id-sets)
        self._partitions: Dict[str, Tuple[List[Any], List[Set[Any]]]] = {}

    @staticmethod
    def _partition_name(value: Any) -> Optional[str]:
        if isinstance(value, bool) or value is None:
            return None  # not range-indexable
        if isinstance(value, (int, float)):
            return "number"
        if isinstance(value, str):
            return "str"
        return None

    def insert(self, doc_id: Any, document: Dict[str, Any]) -> None:
        """Index ``document`` under ``doc_id``."""
        for key in _index_keys(document, self.path, self._simple):
            partition_name = self._partition_name(key)
            if partition_name is None:
                continue
            keys, buckets = self._partitions.setdefault(partition_name, ([], []))
            pos = bisect.bisect_left(keys, key)
            if pos < len(keys) and keys[pos] == key:
                buckets[pos].add(doc_id)
            else:
                keys.insert(pos, key)
                buckets.insert(pos, {doc_id})

    def insert_many(self, entries: List[Tuple[Any, Dict[str, Any]]]) -> None:
        """Bulk-load ``(doc_id, document)`` pairs.

        Stages the batch's keys per partition, sorts them once, and
        merges with the existing key list in a single pass — O((n+m)
        log m) per batch instead of m one-at-a-time list inserts of
        O(n) each. Equivalent to calling :meth:`insert` per entry.
        """
        staged: Dict[str, Dict[Any, Set[Any]]] = {}
        path = self.path
        simple = self._simple
        for doc_id, document in entries:
            if simple:
                value = document.get(path, _ABSENT)
                if value is _ABSENT:
                    continue
                cls = value.__class__
                if cls is float or cls is int:
                    staged.setdefault("number", {}).setdefault(value, set()).add(
                        doc_id
                    )
                    continue
                if cls is str:
                    staged.setdefault("str", {}).setdefault(value, set()).add(
                        doc_id
                    )
                    continue
            for key in _index_keys(document, path, simple):
                partition_name = self._partition_name(key)
                if partition_name is None:
                    continue
                staged.setdefault(partition_name, {}).setdefault(key, set()).add(
                    doc_id
                )
        for partition_name, additions in staged.items():
            keys, buckets = self._partitions.setdefault(partition_name, ([], []))
            new_keys = sorted(additions)
            if not keys:
                keys.extend(new_keys)
                buckets.extend(additions[key] for key in new_keys)
                continue
            if len(new_keys) * 8 < len(keys):
                # small batch against a large partition: the one-pass
                # merge would copy the whole key list; per-key bisect
                # inserts (C-level list memmove) are cheaper.
                for key in new_keys:
                    pos = bisect.bisect_left(keys, key)
                    if pos < len(keys) and keys[pos] == key:
                        buckets[pos] |= additions[key]
                    else:
                        keys.insert(pos, key)
                        buckets.insert(pos, set(additions[key]))
                continue
            merged_keys: List[Any] = []
            merged_buckets: List[Set[Any]] = []
            pos = 0
            for key in new_keys:
                loc = bisect.bisect_left(keys, key, pos)
                merged_keys.extend(keys[pos:loc])
                merged_buckets.extend(buckets[pos:loc])
                if loc < len(keys) and keys[loc] == key:
                    buckets[loc] |= additions[key]
                    merged_keys.append(keys[loc])
                    merged_buckets.append(buckets[loc])
                    pos = loc + 1
                else:
                    merged_keys.append(key)
                    merged_buckets.append(additions[key])
                    pos = loc
            merged_keys.extend(keys[pos:])
            merged_buckets.extend(buckets[pos:])
            keys[:] = merged_keys
            buckets[:] = merged_buckets

    def remove(self, doc_id: Any, document: Dict[str, Any]) -> None:
        """Drop ``document``'s entries."""
        for key in _index_keys(document, self.path, self._simple):
            partition_name = self._partition_name(key)
            if partition_name is None:
                continue
            partition = self._partitions.get(partition_name)
            if partition is None:
                continue
            keys, buckets = partition
            pos = bisect.bisect_left(keys, key)
            if pos < len(keys) and keys[pos] == key:
                buckets[pos].discard(doc_id)
                if not buckets[pos]:
                    del keys[pos]
                    del buckets[pos]

    def range(
        self,
        low: Any = None,
        low_inclusive: bool = True,
        high: Any = None,
        high_inclusive: bool = True,
    ) -> Set[Any]:
        """Document ids with indexed key in the given range."""
        bound = low if low is not None else high
        if bound is None:
            result: Set[Any] = set()
            for keys, buckets in self._partitions.values():
                for bucket in buckets:
                    result |= bucket
            return result
        partition_name = self._partition_name(bound)
        if partition_name is None:
            return set()
        partition = self._partitions.get(partition_name)
        if partition is None:
            return set()
        keys, buckets = partition
        start = 0
        if low is not None:
            start = (
                bisect.bisect_left(keys, low)
                if low_inclusive
                else bisect.bisect_right(keys, low)
            )
        end = len(keys)
        if high is not None:
            end = (
                bisect.bisect_right(keys, high)
                if high_inclusive
                else bisect.bisect_left(keys, high)
            )
        result = set()
        for pos in range(start, end):
            result |= buckets[pos]
        return result

    def lookup(self, value: Any) -> Set[Any]:
        """Document ids whose field equals ``value``."""
        return self.range(low=value, high=value)

    def __len__(self) -> int:
        return sum(
            len(bucket)
            for keys, buckets in self._partitions.values()
            for bucket in buckets
        )
