"""Aggregation pipeline: a compiled, streaming executor.

Stages: ``$match $project $addFields $group $sort $limit $skip $unwind
$count $bucket $sortByCount``. Group accumulators: ``$sum $avg $min
$max $first $last $push $addToSet $count``. Value expressions support ``"$field"`` references
(dotted), literals, and the arithmetic/array operators GoFlow analytics
uses (``$add $subtract $multiply $divide $floor $ceil $abs $size
$concat $cond $ifNull``).

GoFlow's crowd-sensing analytics component (paper Figure 2) is built on
this pipeline: hourly participation histograms, per-model measurement
counts, localized-share computation are all ``$group`` queries.

Execution model
---------------

The paper's evaluation figures are aggregations over 23M observations;
re-walking an expression AST per document and materializing a list per
stage is what made the analytics read path the slowest in the system.
This module therefore *compiles* a pipeline once and streams documents
through it:

- value expressions compile to closures (``compile_expression``), so
  the AST is walked once per pipeline instead of once per document;
- ``$match``/``$project``/``$addFields``/``$unwind`` run as generator
  stages — no per-stage list materialization;
- ``$group``/``$bucket`` fold incrementally with O(1) state per
  accumulator instead of buffering every value and reducing at the end
  (``$push``/``$addToSet`` still hold their result values, which *is*
  their output);
- adjacent ``$sort`` + ``$limit`` fuse into a ``heapq`` top-k, so a
  "top 20 contributors" query never fully sorts the stream;
- results are decoupled from stored documents with one ``json_clone``
  at the pipeline exit rather than ``copy.deepcopy`` per stage.

``repro.docstore.naive`` retains the direct interpreter as the
executable specification; the property suite in
``tests/property/test_aggregate_oracle.py`` checks this executor
against it on randomized documents and pipelines.
"""

from __future__ import annotations

import heapq
import math
from itertools import islice
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.docstore.clone import json_clone
from repro.docstore.cursor import _SortKey, sort_documents
from repro.docstore.errors import DocStoreError, QuerySyntaxError
from repro.docstore.query import get_path, is_missing, matches

ExprFn = Callable[[Dict[str, Any]], Any]


# -- expression compiler ------------------------------------------------------


def _as_number(value: Any, op: str) -> float:
    """Numeric coercion shared by the arithmetic operators.

    ``None`` (missing fields) counts as 0; anything else non-numeric is
    a query error, bools included.
    """
    if value is None:
        return 0
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise QuerySyntaxError(f"{op} requires numeric arguments, got {value!r}")
    return value


def _compile_numeric_args(
    operand: Any, op: str, arity: Optional[int]
) -> List[ExprFn]:
    if not isinstance(operand, list):
        operand = [operand]
    if arity is not None and len(operand) != arity:
        raise QuerySyntaxError(f"{op} requires exactly {arity} arguments")
    return [compile_expression(e) for e in operand]


def _compile_operator(op: str, operand: Any) -> ExprFn:
    if op == "$add":
        fns = _compile_numeric_args(operand, op, None)
        return lambda doc: sum(_as_number(fn(doc), "$add") for fn in fns)
    if op == "$subtract":
        fa, fb = _compile_numeric_args(operand, op, 2)
        return lambda doc: _as_number(fa(doc), "$subtract") - _as_number(
            fb(doc), "$subtract"
        )
    if op == "$multiply":
        fns = _compile_numeric_args(operand, op, None)

        def _multiply(doc: Dict[str, Any]) -> float:
            result = 1.0
            for fn in fns:
                result *= _as_number(fn(doc), "$multiply")
            return result

        return _multiply
    if op == "$divide":
        fa, fb = _compile_numeric_args(operand, op, 2)

        def _divide(doc: Dict[str, Any]) -> float:
            b = _as_number(fb(doc), "$divide")
            if b == 0:
                raise QuerySyntaxError("$divide by zero")
            return _as_number(fa(doc), "$divide") / b

        return _divide
    if op == "$mod":
        fa, fb = _compile_numeric_args(operand, op, 2)

        def _mod(doc: Dict[str, Any]) -> float:
            b = _as_number(fb(doc), "$mod")
            if b == 0:
                raise QuerySyntaxError("$mod by zero")
            return _as_number(fa(doc), "$mod") % b

        return _mod
    if op == "$floor":
        (fa,) = _compile_numeric_args(operand, op, 1)
        return lambda doc: math.floor(_as_number(fa(doc), "$floor"))
    if op == "$ceil":
        (fa,) = _compile_numeric_args(operand, op, 1)
        return lambda doc: math.ceil(_as_number(fa(doc), "$ceil"))
    if op == "$abs":
        (fa,) = _compile_numeric_args(operand, op, 1)
        return lambda doc: abs(_as_number(fa(doc), "$abs"))
    if op == "$size":
        fn = compile_expression(operand)

        def _size(doc: Dict[str, Any]) -> int:
            value = fn(doc)
            if not isinstance(value, list):
                raise QuerySyntaxError(f"$size requires an array, got {value!r}")
            return len(value)

        return _size
    if op == "$concat":
        if not isinstance(operand, list):
            raise QuerySyntaxError("$concat requires a list")
        fns = [compile_expression(e) for e in operand]

        def _concat(doc: Dict[str, Any]) -> Optional[str]:
            parts = [fn(doc) for fn in fns]
            if any(p is None for p in parts):
                return None
            if not all(isinstance(p, str) for p in parts):
                raise QuerySyntaxError("$concat requires string arguments")
            return "".join(parts)

        return _concat
    if op == "$cond":
        if isinstance(operand, dict):
            branches = [operand.get("if"), operand.get("then"), operand.get("else")]
        elif isinstance(operand, list) and len(operand) == 3:
            branches = operand
        else:
            raise QuerySyntaxError("$cond requires [if, then, else]")
        f_if, f_then, f_else = (compile_expression(b) for b in branches)
        return lambda doc: f_then(doc) if f_if(doc) else f_else(doc)
    if op == "$ifNull":
        if not isinstance(operand, list) or len(operand) != 2:
            raise QuerySyntaxError("$ifNull requires [expr, fallback]")
        f_value, f_fallback = compile_expression(operand[0]), compile_expression(
            operand[1]
        )

        def _if_null(doc: Dict[str, Any]) -> Any:
            value = f_value(doc)
            return value if value is not None else f_fallback(doc)

        return _if_null
    raise QuerySyntaxError(f"unknown expression operator {op!r}")


def compile_expression(expression: Any) -> ExprFn:
    """Compile an aggregation value expression to a per-document closure."""
    if isinstance(expression, str) and expression.startswith("$"):
        path = expression[1:]
        if "." not in path:
            # top-level field: a dict lookup; missing resolves to None
            # exactly as the path walker does.
            return lambda doc: doc.get(path)

        def _path(doc: Dict[str, Any]) -> Any:
            value = get_path(doc, path)
            return None if is_missing(value) else value

        return _path
    if isinstance(expression, dict):
        if len(expression) == 1:
            op, operand = next(iter(expression.items()))
            if op.startswith("$"):
                return _compile_operator(op, operand)
        compiled = {k: compile_expression(v) for k, v in expression.items()}
        return lambda doc: {k: fn(doc) for k, fn in compiled.items()}
    if isinstance(expression, list):
        fns = [compile_expression(e) for e in expression]
        return lambda doc: [fn(doc) for fn in fns]
    return lambda doc: expression


# -- group keys --------------------------------------------------------------


def group_key(value: Any) -> Any:
    """A hashable canonical key under which a group id is bucketed.

    Equal values must produce equal keys regardless of representation:
    dicts are keyed by *sorted* items so ``{"a": 1, "b": 2}`` and
    ``{"b": 2, "a": 1}`` land in the same group (a ``repr``-based key
    would split them on insertion order). Bools are tagged so ``True``
    never collides with ``1``.
    """
    cls = value.__class__
    if cls is bool:
        return ("$bool", value)
    if cls is dict:
        return (
            "$doc",
            tuple(sorted((k, group_key(v)) for k, v in value.items())),
        )
    if cls is list or cls is tuple:
        return ("$arr", tuple(group_key(v) for v in value))
    return value


def _safe_group_key(value: Any) -> Any:
    try:
        key = group_key(value)
        hash(key)
        return key
    except TypeError:
        # exotic unhashable scalars (or dicts with unsortable keys):
        # fall back to a repr key, which can only over-split, never merge
        # unequal ids.
        return ("$repr", repr(value))


# -- incremental accumulators -------------------------------------------------


class _SumState:
    # ``exact`` goes False once a float feeds the state: float addition
    # is order-dependent, so a partitioned fold of this state is no
    # longer guaranteed bit-identical to the sequential sum (same
    # fallback philosophy as the columnar mirror's big-float flags).
    __slots__ = ("total", "exact")

    def __init__(self) -> None:
        self.total: Any = 0
        self.exact = True

    def feed(self, value: Any) -> None:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if isinstance(value, float):
                self.exact = False
            self.total += value

    def merge(self, other: "_SumState") -> None:
        self.total += other.total
        self.exact = self.exact and other.exact

    def result(self) -> Any:
        return self.total


class _AvgState:
    __slots__ = ("total", "count", "exact")

    def __init__(self) -> None:
        self.total: Any = 0
        self.count = 0
        self.exact = True

    def feed(self, value: Any) -> None:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if isinstance(value, float):
                self.exact = False
            self.total += value
            self.count += 1

    def merge(self, other: "_AvgState") -> None:
        # $avg merges as a (sum, count) pair — averaging the per-shard
        # averages would weight small shards equally with large ones.
        self.total += other.total
        self.count += other.count
        self.exact = self.exact and other.exact

    def result(self) -> Any:
        return self.total / self.count if self.count else None


class _MinState:
    __slots__ = ("best",)

    def __init__(self) -> None:
        self.best: Any = None

    def feed(self, value: Any) -> None:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if self.best is None or value < self.best:
                self.best = value

    def merge(self, other: "_MinState") -> None:
        if other.best is not None and (self.best is None or other.best < self.best):
            self.best = other.best

    def result(self) -> Any:
        return self.best


class _MaxState:
    __slots__ = ("best",)

    def __init__(self) -> None:
        self.best: Any = None

    def feed(self, value: Any) -> None:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if self.best is None or value > self.best:
                self.best = value

    def merge(self, other: "_MaxState") -> None:
        if other.best is not None and (self.best is None or other.best > self.best):
            self.best = other.best

    def result(self) -> Any:
        return self.best


class _FirstState:
    __slots__ = ("value", "seen")

    def __init__(self) -> None:
        self.value: Any = None
        self.seen = False

    def feed(self, value: Any) -> None:
        if not self.seen:
            self.value = value
            self.seen = True

    def result(self) -> Any:
        return self.value


class _LastState:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Any = None

    def feed(self, value: Any) -> None:
        self.value = value

    def result(self) -> Any:
        return self.value


class _PushState:
    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: List[Any] = []

    def feed(self, value: Any) -> None:
        self.values.append(value)

    def result(self) -> Any:
        return self.values


class _AddToSetState:
    """First-seen-order dedup: set fast path, unhashable fallback.

    Hashable values dedup in O(1) against ``seen``; unhashable ones
    (sub-documents, arrays) fall back to a linear equality scan over the
    collected items, which is the only correct option left for them.
    """

    __slots__ = ("items", "seen")

    def __init__(self) -> None:
        self.items: List[Any] = []
        self.seen: set = set()

    def feed(self, value: Any) -> None:
        try:
            if value in self.seen:
                return
            self.seen.add(value)
        except TypeError:
            if value in self.items:
                return
        self.items.append(value)

    def result(self) -> Any:
        return self.items


class _CountState:
    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def feed(self, value: Any) -> None:
        self.count += 1

    def merge(self, other: "_CountState") -> None:
        self.count += other.count

    def result(self) -> Any:
        return self.count


_ACCUMULATOR_STATES = {
    "$sum": _SumState,
    "$avg": _AvgState,
    "$min": _MinState,
    "$max": _MaxState,
    "$first": _FirstState,
    "$last": _LastState,
    "$push": _PushState,
    "$addToSet": _AddToSetState,
    "$count": _CountState,
}

_ACCUMULATOR_OPS = frozenset(_ACCUMULATOR_STATES)

#: Accumulators whose per-partition states combine losslessly via
#: ``merge()`` — the scatter-gather coordinator may fold these per shard
#: and re-group centrally. Order-dependent ($first/$last) and
#: list-building ($push/$addToSet) accumulators are excluded: their
#: merge would need the global document order, so pipelines using them
#: gather documents centrally instead.
MERGEABLE_ACCUMULATORS = frozenset({"$sum", "$avg", "$min", "$max", "$count"})

#: (output field, value closure, state factory)
AccSpec = Tuple[str, ExprFn, Callable[[], Any]]


def _compile_accumulator(field_name: str, acc: Any) -> AccSpec:
    if not isinstance(acc, dict) or len(acc) != 1:
        raise QuerySyntaxError(
            f"$group field {field_name!r} must be a single-accumulator document"
        )
    op, expression = next(iter(acc.items()))
    state_cls = _ACCUMULATOR_STATES.get(op)
    if state_cls is None:
        raise QuerySyntaxError(f"unknown accumulator {op!r}")
    return field_name, compile_expression(expression), state_cls


# -- stage compilation --------------------------------------------------------

StageFn = Callable[[Iterable[Dict[str, Any]]], Iterable[Dict[str, Any]]]


def _compile_group(spec: Dict[str, Any]) -> StageFn:
    if not isinstance(spec, dict) or "_id" not in spec:
        raise QuerySyntaxError("$group requires an _id expression")
    id_expr = spec["_id"]
    id_fn: ExprFn = (
        (lambda doc: None) if id_expr is None else compile_expression(id_expr)
    )
    accumulators = [
        _compile_accumulator(name, acc)
        for name, acc in spec.items()
        if name != "_id"
    ]

    def _group(documents: Iterable[Dict[str, Any]]) -> Iterator[Dict[str, Any]]:
        groups: Dict[Any, Tuple[Any, List[Any]]] = {}
        for doc in documents:
            group_id = id_fn(doc)
            key = _safe_group_key(group_id)
            entry = groups.get(key)
            if entry is None:
                entry = (group_id, [state() for _, _, state in accumulators])
                groups[key] = entry
            states = entry[1]
            for (_, value_fn, _), state in zip(accumulators, states):
                state.feed(value_fn(doc))
        for group_id, states in groups.values():
            out: Dict[str, Any] = {"_id": group_id}
            for (name, _, _), state in zip(accumulators, states):
                out[name] = state.result()
            yield out

    return _group


def _compile_project(spec: Dict[str, Any]) -> StageFn:
    if not spec:
        raise QuerySyntaxError("$project requires a non-empty spec")
    inclusions = [k for k, v in spec.items() if v in (1, True) and k != "_id"]
    exclusions = [k for k, v in spec.items() if v in (0, False)]
    computed = [
        (k, compile_expression(v))
        for k, v in spec.items()
        if not isinstance(v, bool) and v not in (0, 1)
    ]
    if inclusions and [k for k in exclusions if k != "_id"]:
        raise QuerySyntaxError("$project cannot mix inclusion and exclusion")
    include_id = spec.get("_id", 1) in (1, True)

    if inclusions or computed:

        def _project(
            documents: Iterable[Dict[str, Any]]
        ) -> Iterator[Dict[str, Any]]:
            for doc in documents:
                out: Dict[str, Any] = {}
                if include_id and "_id" in doc:
                    out["_id"] = doc["_id"]
                for path in inclusions:
                    value = get_path(doc, path)
                    if not is_missing(value):
                        out[path] = value
                for path, fn in computed:
                    out[path] = fn(doc)
                yield out

        return _project

    def _exclude(documents: Iterable[Dict[str, Any]]) -> Iterator[Dict[str, Any]]:
        for doc in documents:
            out = dict(doc)
            for path in exclusions:
                out.pop(path, None)
            yield out

    return _exclude


def _compile_add_fields(spec: Dict[str, Any]) -> StageFn:
    computed = [(name, compile_expression(expr)) for name, expr in spec.items()]

    def _add_fields(documents: Iterable[Dict[str, Any]]) -> Iterator[Dict[str, Any]]:
        for doc in documents:
            out = dict(doc)
            for name, fn in computed:
                out[name] = fn(doc)
            yield out

    return _add_fields


def _compile_unwind(spec: Any) -> StageFn:
    if isinstance(spec, str):
        path = spec
        keep_empty = False
    elif isinstance(spec, dict) and "path" in spec:
        path = spec["path"]
        keep_empty = bool(spec.get("preserveNullAndEmptyArrays", False))
    else:
        raise QuerySyntaxError("$unwind requires a '$path' string or {path: ...}")
    if not isinstance(path, str) or not path.startswith("$"):
        raise QuerySyntaxError("$unwind path must start with '$'")
    field_path = path[1:]

    def _unwind(documents: Iterable[Dict[str, Any]]) -> Iterator[Dict[str, Any]]:
        for doc in documents:
            value = get_path(doc, field_path)
            if is_missing(value) or value is None or (
                isinstance(value, list) and not value
            ):
                if keep_empty:
                    yield dict(doc)
                continue
            elements = value if isinstance(value, list) else [value]
            for element in elements:
                out = dict(doc)
                out[field_path] = element
                yield out

    return _unwind


def _compile_bucket(spec: Dict[str, Any]) -> StageFn:
    """MongoDB's $bucket: histogram documents by boundary intervals.

    This is the natural stage for the paper's accuracy-bucket figures
    (10-13): boundaries [0, 6, 20, 50, 100, ...] over
    ``$location.accuracy_m``.
    """
    group_by = spec.get("groupBy")
    boundaries = spec.get("boundaries")
    if not isinstance(group_by, str) or not group_by.startswith("$"):
        raise QuerySyntaxError("$bucket requires a '$field' groupBy")
    if (
        not isinstance(boundaries, list)
        or len(boundaries) < 2
        or boundaries != sorted(boundaries)
    ):
        raise QuerySyntaxError("$bucket requires sorted boundaries (>= 2)")
    has_default = "default" in spec
    default_key = spec.get("default")
    output_spec = spec.get("output", {"count": {"$sum": 1}})
    accumulators = [
        _compile_accumulator(name, acc) for name, acc in output_spec.items()
    ]
    value_fn = compile_expression(group_by)
    lower_bounds = boundaries[:-1]
    low, high = boundaries[0], boundaries[-1]

    def _bucket(documents: Iterable[Dict[str, Any]]) -> Iterator[Dict[str, Any]]:
        # bucket key -> (bucket id, accumulator states); keys are lower
        # bounds plus (when declared) the default bucket key. Buckets
        # that never receive a document are omitted, as MongoDB does.
        folds: Dict[Any, Tuple[Any, List[Any]]] = {}
        for doc in documents:
            value = value_fn(doc)
            key: Any = None
            placed = False
            if (
                isinstance(value, (int, float))
                and not isinstance(value, bool)
                and low <= value < high
            ):
                index = _bisect_interval(boundaries, value)
                key = lower_bounds[index]
                placed = True
            if not placed:
                if not has_default:
                    raise QuerySyntaxError(
                        f"$bucket value {value!r} outside boundaries and no default"
                    )
                key = default_key
            bucket_key = _safe_group_key(key)
            entry = folds.get(bucket_key)
            if entry is None:
                entry = (key, [state() for _, _, state in accumulators])
                folds[bucket_key] = entry
            for (_, fn, _), state in zip(accumulators, entry[1]):
                state.feed(fn(doc))
        order = list(lower_bounds) + ([default_key] if has_default else [])
        emitted = set()
        for key in order:
            bucket_key = _safe_group_key(key)
            if bucket_key in emitted or bucket_key not in folds:
                continue
            emitted.add(bucket_key)
            _, states = folds[bucket_key]
            out: Dict[str, Any] = {"_id": key}
            for (name, _, _), state in zip(accumulators, states):
                out[name] = state.result()
            yield out

    return _bucket


def _bisect_interval(boundaries: List[Any], value: Any) -> int:
    """Index of the half-open interval [b[i], b[i+1]) containing value."""
    lo, hi = 0, len(boundaries) - 1
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if value < boundaries[mid]:
            hi = mid
        else:
            lo = mid
    return lo


def _compile_sort_by_count(spec: Any) -> StageFn:
    """MongoDB's $sortByCount: group by expression, count, sort desc."""
    if not (isinstance(spec, str) and spec.startswith("$")) and not isinstance(
        spec, dict
    ):
        raise QuerySyntaxError("$sortByCount requires a '$field' or expression")
    grouped = _compile_group({"_id": spec, "count": {"$sum": 1}})

    def _sort_by_count(
        documents: Iterable[Dict[str, Any]]
    ) -> Iterable[Dict[str, Any]]:
        return sorted(
            grouped(documents), key=lambda d: (-d["count"], repr(d["_id"]))
        )

    return _sort_by_count


class _DescKey:
    """Inverts _SortKey ordering for descending sort directions."""

    __slots__ = ("key",)

    def __init__(self, key: _SortKey) -> None:
        self.key = key

    def __lt__(self, other: "_DescKey") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _DescKey) and self.key == other.key


def _compile_top_k(sort_spec: Dict[str, Any], limit: int) -> StageFn:
    """Fused ``$sort`` + ``$limit``: a bounded heap instead of a full sort."""
    spec_items = list(sort_spec.items())
    for _, direction in spec_items:
        if direction not in (1, -1):
            raise DocStoreError(f"sort direction must be 1 or -1, got {direction}")

    def _key(doc: Dict[str, Any], index: int) -> Tuple[Any, ...]:
        parts: List[Any] = []
        for path, direction in spec_items:
            key = _SortKey(get_path(doc, path))
            parts.append(key if direction == 1 else _DescKey(key))
        parts.append(index)  # ties keep input order: a stable sort prefix
        return tuple(parts)

    def _top_k(documents: Iterable[Dict[str, Any]]) -> Iterator[Dict[str, Any]]:
        if limit == 0:
            return iter(())
        best = heapq.nsmallest(
            limit,
            ((_key(doc, index), doc) for index, doc in enumerate(documents)),
            key=lambda pair: pair[0],
        )
        return (doc for _, doc in best)

    return _top_k


def _check_non_negative_int(spec: Any, stage: str) -> int:
    if not isinstance(spec, int) or spec < 0:
        raise QuerySyntaxError(f"{stage} requires a non-negative int")
    return spec


class CompiledPipeline:
    """A pipeline compiled to a chain of streaming stage closures.

    ``leading_match`` exposes the filter of a leading ``$match`` stage so
    :meth:`repro.docstore.collection.Collection.aggregate` can push it
    down into the index planner and feed the executor pre-filtered
    documents (running the remaining stages via
    ``run(..., skip_leading_match=True)``).
    """

    def __init__(self, pipeline: List[Dict[str, Any]]) -> None:
        self.leading_match: Optional[Dict[str, Any]] = None
        self._stages: List[StageFn] = []
        self._post_match_index = 0
        specs: List[Tuple[str, Any]] = []
        for stage in pipeline:
            if not isinstance(stage, dict) or len(stage) != 1:
                raise QuerySyntaxError("each pipeline stage must be a single-key dict")
            specs.append(next(iter(stage.items())))
        index = 0
        while index < len(specs):
            op, spec = specs[index]
            fused = False
            if op == "$match":
                match_spec = spec
                self._stages.append(
                    lambda docs, s=match_spec: (d for d in docs if matches(d, s))
                )
                if index == 0 and isinstance(spec, dict):
                    self.leading_match = spec
                    self._post_match_index = 1
            elif op == "$group":
                self._stages.append(_compile_group(spec))
            elif op == "$project":
                self._stages.append(_compile_project(spec))
            elif op == "$addFields":
                self._stages.append(_compile_add_fields(spec))
            elif op == "$sort":
                if index + 1 < len(specs) and specs[index + 1][0] == "$limit":
                    limit = _check_non_negative_int(specs[index + 1][1], "$limit")
                    self._stages.append(_compile_top_k(spec, limit))
                    fused = True
                else:
                    sort_items = list(spec.items())
                    self._stages.append(
                        lambda docs, s=sort_items: sort_documents(list(docs), s)
                    )
            elif op == "$limit":
                limit = _check_non_negative_int(spec, "$limit")
                self._stages.append(lambda docs, n=limit: islice(docs, n))
            elif op == "$skip":
                skip = _check_non_negative_int(spec, "$skip")
                self._stages.append(lambda docs, n=skip: islice(docs, n, None))
            elif op == "$unwind":
                self._stages.append(_compile_unwind(spec))
            elif op == "$bucket":
                self._stages.append(_compile_bucket(spec))
            elif op == "$sortByCount":
                self._stages.append(_compile_sort_by_count(spec))
            elif op == "$count":
                if not isinstance(spec, str) or not spec:
                    raise QuerySyntaxError("$count requires a field name")
                self._stages.append(
                    lambda docs, name=spec: iter([{name: sum(1 for _ in docs)}])
                )
            else:
                raise QuerySyntaxError(f"unknown pipeline stage {op!r}")
            index += 2 if fused else 1

    def stream(
        self,
        documents: Iterable[Dict[str, Any]],
        skip_leading_match: bool = False,
    ) -> Iterable[Dict[str, Any]]:
        """The raw stage chain over ``documents`` — no exit clone.

        Yielded documents may alias stored ones; callers must treat them
        as read-only (the scatter-gather fold consumes them without ever
        handing them out, which is why it can skip the per-row clone).
        """
        stages = self._stages
        if skip_leading_match and self.leading_match is not None:
            stages = stages[self._post_match_index:]
        stream: Iterable[Dict[str, Any]] = documents
        for stage in stages:
            stream = stage(stream)
        return stream

    def run(
        self,
        documents: Iterable[Dict[str, Any]],
        skip_leading_match: bool = False,
    ) -> List[Dict[str, Any]]:
        """Stream ``documents`` through the stages; returns result docs.

        Results are cloned on exit so callers can never corrupt stored
        documents (one ``json_clone`` per result instead of a deepcopy
        per stage per document).
        """
        return [
            json_clone(doc)
            for doc in self.stream(documents, skip_leading_match=skip_leading_match)
        ]


def compile_pipeline(pipeline: List[Dict[str, Any]]) -> CompiledPipeline:
    """Compile ``pipeline`` once; reusable over any document iterable."""
    return CompiledPipeline(pipeline)


def aggregate(
    documents: Iterable[Dict[str, Any]], pipeline: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Run ``pipeline`` over ``documents`` and return the result list."""
    return CompiledPipeline(pipeline).run(documents)
