"""Store persistence: JSON-lines snapshots.

A deployment needs its data to survive the process. The snapshot format
is one JSON object per line:

- a header line ``{"type": "store", "name": ..., "version": 1}`` — when
  the snapshot was produced by a WAL checkpoint it also carries
  ``"wal_start"``, the first log segment recovery must replay on top;
- per collection, a ``{"type": "collection", ...}`` line declaring the
  name and its index definitions;
- one ``{"type": "doc", "collection": ..., "doc": {...}}`` line per
  document;
- optional ``{"type": "state", "key": ..., "value": ...}`` lines for
  middleware state that must survive compaction (the ingest dedup
  ledger) but lives outside any collection.

Loading replays declarations then inserts — indexes are rebuilt, and
unique constraints re-verified, on the way in. Only JSON-serializable
documents can be persisted (which is all GoFlow ever stores: the wire
format is JSON).

Crash safety: :func:`dump_store` never truncates the previous snapshot
in place. It writes to a temporary file in the same directory, flushes
and ``fsync``\\ s it, then atomically ``os.replace``\\ s the target — a
crash mid-dump leaves the old snapshot intact, and readers only ever
see a complete file.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.docstore.errors import DocStoreError
from repro.docstore.store import DocumentStore

_FORMAT_VERSION = 1

#: Documents buffered per ``insert_many`` call during replay — bounds
#: peak memory on a 23M-document restore while still amortizing the
#: per-call lock/index overhead.
REPLAY_BATCH = 5000


def dump_store(
    store: DocumentStore,
    path: Union[str, Path],
    state: Optional[Dict[str, Any]] = None,
    wal_start: Optional[int] = None,
) -> int:
    """Write a snapshot of ``store`` to ``path``; returns document count.

    Args:
        store: the store to snapshot.
        path: target file; replaced atomically on success, untouched on
            any failure.
        state: extra middleware state to persist as ``state`` records
            (the WAL checkpoint stores the dedup ledger here).
        wal_start: recorded in the header when the snapshot is a WAL
            checkpoint — the first log segment to replay on recovery.
    """
    path = Path(path)
    directory = path.parent
    written = 0
    handle = tempfile.NamedTemporaryFile(
        mode="w",
        encoding="utf-8",
        dir=directory,
        prefix=path.name + ".",
        suffix=".tmp",
        delete=False,
    )
    tmp_path = Path(handle.name)
    try:
        with handle:
            header: Dict[str, Any] = {
                "type": "store",
                "name": store.name,
                "version": _FORMAT_VERSION,
            }
            if wal_start is not None:
                header["wal_start"] = wal_start
            handle.write(json.dumps(header) + "\n")
            for name in store.collection_names():
                collection = store.collection(name)
                # one atomic look per collection: index definitions and
                # documents come from the same read-locked view, so a
                # concurrent writer can never yield a torn snapshot
                # (docs inconsistent with index declarations).
                with collection.read_locked():
                    indexes = collection.index_specs()
                    documents = collection.iter_documents()
                    handle.write(
                        json.dumps(
                            {"type": "collection", "name": name, "indexes": indexes}
                        )
                        + "\n"
                    )
                    for document in documents:
                        try:
                            line = json.dumps(
                                {"type": "doc", "collection": name, "doc": document}
                            )
                        except (TypeError, ValueError) as exc:
                            raise DocStoreError(
                                f"document in {name!r} is not JSON-serializable: {exc}"
                            ) from exc
                        handle.write(line + "\n")
                        written += 1
            for key, value in (state or {}).items():
                handle.write(
                    json.dumps({"type": "state", "key": key, "value": value}) + "\n"
                )
            handle.flush()
            os.fsync(handle.fileno())
    except BaseException:
        tmp_path.unlink(missing_ok=True)
        raise
    os.replace(tmp_path, path)
    _fsync_directory(directory)
    return written


def _fsync_directory(directory: Path) -> None:
    """Make the rename itself durable (best effort off POSIX)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX platforms
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystems without dir fsync
        pass
    finally:
        os.close(fd)


def load_store(path: Union[str, Path], clock=None) -> DocumentStore:
    """Rebuild a store from a snapshot written by :func:`dump_store`."""
    store, _, _ = load_snapshot(path, clock=clock)
    return store


def load_snapshot(
    path: Union[str, Path], clock=None
) -> Tuple[DocumentStore, Dict[str, Any], int]:
    """Load a snapshot plus its sidecar state.

    Returns ``(store, state, wal_start)`` where ``state`` maps the
    ``state`` record keys to their values and ``wal_start`` is the first
    WAL segment recovery should replay (1 when the snapshot was not a
    checkpoint).
    """
    path = Path(path)
    store: Optional[DocumentStore] = None
    state: Dict[str, Any] = {}
    wal_start = 1
    # consecutive doc records for one collection are replayed through a
    # single batched insert_many(copy=False): the documents were just
    # parsed from JSON (no caller retains them, no defensive clone
    # needed) and the per-document lock/marker overhead is amortized —
    # a large restore takes one write lock per batch, not per doc.
    batch_collection: Optional[str] = None
    batch_docs: List[Dict[str, Any]] = []

    def flush_batch() -> None:
        nonlocal batch_collection, batch_docs
        if batch_collection is not None and batch_docs:
            store.collection(batch_collection).insert_many(batch_docs, copy=False)
        batch_collection = None
        batch_docs = []

    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DocStoreError(
                    f"snapshot line {line_number} is not valid JSON: {exc}"
                ) from exc
            kind = record.get("type")
            if kind == "store":
                if record.get("version") != _FORMAT_VERSION:
                    raise DocStoreError(
                        f"unsupported snapshot version {record.get('version')!r}"
                    )
                store = DocumentStore(name=record["name"], clock=clock)
                wal_start = int(record.get("wal_start", 1))
            elif store is None:
                raise DocStoreError("snapshot does not start with a store header")
            elif kind == "doc":
                name = record["collection"]
                if name != batch_collection:
                    flush_batch()
                    batch_collection = name
                batch_docs.append(record["doc"])
                if len(batch_docs) >= REPLAY_BATCH:
                    flush_batch()
                    batch_collection = name
            elif kind == "collection":
                flush_batch()
                collection = store.collection(record["name"])
                for index in record.get("indexes", []):
                    collection.create_index(
                        index["path"],
                        kind=index["kind"],
                        unique=index.get("unique", False),
                        exist_ok=True,
                    )
            elif kind == "state":
                flush_batch()
                state[record["key"]] = record["value"]
            else:
                raise DocStoreError(
                    f"unknown snapshot record type {kind!r} at line {line_number}"
                )
        flush_batch()
    if store is None:
        raise DocStoreError(f"snapshot {path} is empty")
    return store, state, wal_start
