"""Store persistence: JSON-lines snapshots.

A deployment needs its data to survive the process. The snapshot format
is one JSON object per line:

- a header line ``{"type": "store", "name": ..., "version": 1}``;
- per collection, a ``{"type": "collection", ...}`` line declaring the
  name and its index definitions;
- one ``{"type": "doc", "collection": ..., "doc": {...}}`` line per
  document.

Loading replays declarations then inserts — indexes are rebuilt, and
unique constraints re-verified, on the way in. Only JSON-serializable
documents can be persisted (which is all GoFlow ever stores: the wire
format is JSON).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Union

from repro.docstore.errors import DocStoreError
from repro.docstore.store import DocumentStore

_FORMAT_VERSION = 1


def dump_store(store: DocumentStore, path: Union[str, Path]) -> int:
    """Write a snapshot of ``store`` to ``path``; returns document count."""
    path = Path(path)
    written = 0
    with path.open("w", encoding="utf-8") as handle:
        header = {
            "type": "store",
            "name": store.name,
            "version": _FORMAT_VERSION,
        }
        handle.write(json.dumps(header) + "\n")
        for name in store.collection_names():
            collection = store.collection(name)
            indexes = []
            for index_path in collection.index_paths():
                if index_path in collection._hash_indexes:
                    indexes.append(
                        {
                            "path": index_path,
                            "kind": "hash",
                            "unique": collection._hash_indexes[index_path].unique,
                        }
                    )
                if index_path in collection._sorted_indexes:
                    indexes.append({"path": index_path, "kind": "sorted"})
            handle.write(
                json.dumps(
                    {"type": "collection", "name": name, "indexes": indexes}
                )
                + "\n"
            )
            for document in collection.find({}):
                try:
                    line = json.dumps(
                        {"type": "doc", "collection": name, "doc": document}
                    )
                except TypeError as exc:
                    raise DocStoreError(
                        f"document in {name!r} is not JSON-serializable: {exc}"
                    ) from exc
                handle.write(line + "\n")
                written += 1
    return written


def load_store(
    path: Union[str, Path], clock=None
) -> DocumentStore:
    """Rebuild a store from a snapshot written by :func:`dump_store`."""
    path = Path(path)
    store: DocumentStore | None = None
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DocStoreError(
                    f"snapshot line {line_number} is not valid JSON: {exc}"
                ) from exc
            kind = record.get("type")
            if kind == "store":
                if record.get("version") != _FORMAT_VERSION:
                    raise DocStoreError(
                        f"unsupported snapshot version {record.get('version')!r}"
                    )
                store = DocumentStore(name=record["name"], clock=clock)
            elif store is None:
                raise DocStoreError("snapshot does not start with a store header")
            elif kind == "collection":
                collection = store.collection(record["name"])
                for index in record.get("indexes", []):
                    collection.create_index(
                        index["path"],
                        kind=index["kind"],
                        unique=index.get("unique", False),
                    )
            elif kind == "doc":
                store.collection(record["collection"]).insert_one(record["doc"])
            else:
                raise DocStoreError(
                    f"unknown snapshot record type {kind!r} at line {line_number}"
                )
    if store is None:
        raise DocStoreError(f"snapshot {path} is empty")
    return store
