"""In-process document store (the MongoDB substitute).

GoFlow's storage layer (paper §3.1: "Data storage ... builds upon
MongoDB") needs document collections with filtered retrieval, update
operators, secondary indexes, and an aggregation pipeline for analytics.
This package implements that subset from scratch:

- query operators: ``$eq $ne $gt $gte $lt $lte $in $nin $exists $regex
  $and $or $nor $not $mod $size $elemMatch $all``;
- dotted-path field access into nested documents and arrays;
- update operators: ``$set $unset $inc $mul $min $max $push $pull
  $addToSet $rename $currentDate`` (+ replacement documents);
- secondary indexes (hash + sorted) consulted by the query planner for
  equality and range predicates;
- aggregation pipeline: ``$match $project $group $sort $limit $skip
  $unwind $count $addFields`` with the common accumulators;
- cursors with sort/skip/limit chaining.

Semantics deliberately track MongoDB where the paper's workload depends
on them (e.g. missing fields, array membership matching, stable sorts).
"""

from repro.docstore.errors import (
    DocStoreError,
    DuplicateKeyError,
    IndexError_,
    QuerySyntaxError,
    UpdateSyntaxError,
)
from repro.docstore.query import get_path, matches
from repro.docstore.update import apply_update
from repro.docstore.index import HashIndex, SortedIndex
from repro.docstore.cursor import Cursor
from repro.docstore.collection import Collection
from repro.docstore.aggregate import aggregate
from repro.docstore.store import DocumentStore
from repro.docstore.persistence import dump_store, load_snapshot, load_store
from repro.docstore.wal import WalConfig, WriteAheadLog, recover_store

__all__ = [
    "DocumentStore",
    "dump_store",
    "load_snapshot",
    "load_store",
    "WalConfig",
    "WriteAheadLog",
    "recover_store",
    "Collection",
    "Cursor",
    "HashIndex",
    "SortedIndex",
    "aggregate",
    "apply_update",
    "get_path",
    "matches",
    "DocStoreError",
    "DuplicateKeyError",
    "IndexError_",
    "QuerySyntaxError",
    "UpdateSyntaxError",
]
