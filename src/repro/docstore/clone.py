"""Fast structural cloning of JSON-like documents.

``copy.deepcopy`` dominates the ingest and read hot paths: it walks a
memo dict and dispatch table for every node. Stored documents are
JSON-shaped (dicts, lists, scalars), so a direct recursive rebuild is
several times cheaper. Exotic values (custom classes, dict/list
subclasses) fall back to ``copy.deepcopy`` per subtree, preserving the
old semantics for anything that isn't plain JSON.
"""

from __future__ import annotations

import copy
from typing import Any


def json_clone(value: Any) -> Any:
    """A deep copy of ``value`` optimized for JSON-shaped data."""
    cls = value.__class__
    if cls is dict:
        return {k: json_clone(v) for k, v in value.items()}
    if cls is list:
        return [json_clone(v) for v in value]
    if cls is str or cls is int or cls is float or cls is bool or value is None:
        return value
    if cls is tuple:
        return tuple(json_clone(v) for v in value)
    return copy.deepcopy(value)
