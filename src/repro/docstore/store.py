"""The document store: a namespace of collections.

Mirrors a single MongoDB database. GoFlow owns one store and keeps one
collection per concern (observations, accounts, jobs, analytics,
calibration), exactly like the paper's "Data storage stores/deletes
individual crowd-sensed messages as well as accounts, jobs and analytics
information".
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro import concurrency
from repro.docstore.collection import Collection
from repro.docstore.errors import DocStoreError


class DocumentStore:
    """A named set of collections, created lazily on first access."""

    def __init__(
        self, name: str = "goflow", clock: Optional[Callable[[], float]] = None
    ) -> None:
        if not name:
            raise DocStoreError("store name must be non-empty")
        self.name = name
        self._clock = clock
        self._collections: Dict[str, Collection] = {}
        self._lock = concurrency.make_rlock()

    def collection(self, name: str) -> Collection:
        """The collection named ``name``, creating it if needed.

        Creation is serialized so two threads racing on a new name get
        the same Collection object, never two half-populated twins.
        """
        with self._lock:
            coll = self._collections.get(name)
            if coll is None:
                coll = Collection(name, clock=self._clock)
                self._collections[name] = coll
            return coll

    def __getitem__(self, name: str) -> Collection:
        return self.collection(name)

    def has_collection(self, name: str) -> bool:
        """Whether ``name`` has been created."""
        with self._lock:
            return name in self._collections

    def collection_names(self) -> List[str]:
        """Names of existing collections."""
        with self._lock:
            return sorted(self._collections)

    def drop_collection(self, name: str) -> None:
        """Delete a collection and its documents."""
        with self._lock:
            if name not in self._collections:
                raise DocStoreError(f"unknown collection {name!r}")
            del self._collections[name]

    def total_documents(self) -> int:
        """Documents across all collections."""
        with self._lock:
            collections = list(self._collections.values())
        return sum(len(c) for c in collections)

    def __repr__(self) -> str:
        return f"DocumentStore({self.name!r}, collections={len(self._collections)})"
