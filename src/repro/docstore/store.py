"""The document store: a namespace of collections.

Mirrors a single MongoDB database. GoFlow owns one store and keeps one
collection per concern (observations, accounts, jobs, analytics,
calibration), exactly like the paper's "Data storage stores/deletes
individual crowd-sensed messages as well as accounts, jobs and analytics
information".

Durability is opt-in: a store recovered via :meth:`DocumentStore.recover`
(or handed a journal with :meth:`attach_journal`) journals every
collection mutation into an append-only write-ahead log *before*
applying it, and can be rebuilt — snapshot plus log replay — after a
kill -9. See :mod:`repro.docstore.wal`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Union

from repro import concurrency
from repro.docstore.collection import Collection
from repro.docstore.errors import DocStoreError


class DocumentStore:
    """A named set of collections, created lazily on first access."""

    def __init__(
        self, name: str = "goflow", clock: Optional[Callable[[], float]] = None
    ) -> None:
        if not name:
            raise DocStoreError("store name must be non-empty")
        self.name = name
        self._clock = clock
        self._collections: Dict[str, Collection] = {}
        self._lock = concurrency.make_rlock()
        #: write-ahead log shared by every collection (None = in-memory)
        self._journal: Optional[Any] = None
        #: middleware state recovered alongside the documents (e.g. the
        #: ingest dedup ledger); empty for in-memory stores.
        self.recovered_state: Dict[str, Any] = {}

    # -- durability -----------------------------------------------------------

    @classmethod
    def recover(
        cls,
        directory: Union[str, "Path"],
        name: str = "goflow",
        clock: Optional[Callable[[], float]] = None,
        config: Optional[Any] = None,
    ) -> "DocumentStore":
        """Open (or create) a durable store rooted at ``directory``.

        Replays the latest snapshot plus every surviving write-ahead-log
        record — idempotently, truncating at the first torn record —
        then attaches a live journal so subsequent writes keep being
        logged. ``store.recovered_state`` carries the middleware state
        (dedup-ledger keys) the log preserved across the crash.

        Args:
            directory: data directory; created when absent.
            name: store name for a fresh (empty) directory.
            clock: passed through to collections.
            config: a :class:`repro.docstore.wal.WalConfig` (defaults
                apply when None).
        """
        from repro.docstore.wal import recover_store

        return recover_store(directory, name=name, clock=clock, config=config)

    def attach_journal(self, journal: Optional[Any]) -> None:
        """Attach ``journal`` to this store and every collection."""
        with self._lock:
            self._journal = journal
            for collection in self._collections.values():
                collection.attach_journal(journal)

    @property
    def journal(self) -> Optional[Any]:
        """The attached write-ahead log, or None for in-memory stores."""
        return self._journal

    def checkpoint(self) -> int:
        """Compact the write-ahead log into a fresh snapshot.

        Returns the number of documents in the snapshot. Raises for
        in-memory stores (there is nothing to checkpoint).
        """
        journal = self._journal
        if journal is None:
            raise DocStoreError(f"store {self.name!r} has no write-ahead log")
        return journal.checkpoint()

    def sync(self) -> None:
        """Force the journal to disk (no-op for in-memory stores)."""
        if self._journal is not None:
            self._journal.sync()

    def durability_info(self) -> Dict[str, Any]:
        """Journal health for ``middleware_stats()``; safe without one."""
        if self._journal is None:
            return {"enabled": False}
        return self._journal.info()

    # -- collections ----------------------------------------------------------

    def collection(self, name: str) -> Collection:
        """The collection named ``name``, creating it if needed.

        Creation is serialized so two threads racing on a new name get
        the same Collection object, never two half-populated twins.
        """
        with self._lock:
            coll = self._collections.get(name)
            if coll is None:
                coll = Collection(name, clock=self._clock, journal=self._journal)
                self._collections[name] = coll
            return coll

    def __getitem__(self, name: str) -> Collection:
        return self.collection(name)

    def has_collection(self, name: str) -> bool:
        """Whether ``name`` has been created."""
        with self._lock:
            return name in self._collections

    def collection_names(self) -> List[str]:
        """Names of existing collections."""
        with self._lock:
            return sorted(self._collections)

    def drop_collection(self, name: str) -> None:
        """Delete a collection and its documents."""
        with self._lock:
            if name not in self._collections:
                raise DocStoreError(f"unknown collection {name!r}")
            if self._journal is not None:
                self._journal.log({"op": "drop_collection", "c": name})
            del self._collections[name]

    def total_documents(self) -> int:
        """Documents across all collections."""
        with self._lock:
            collections = list(self._collections.values())
        return sum(len(c) for c in collections)

    def __repr__(self) -> str:
        return f"DocumentStore({self.name!r}, collections={len(self._collections)})"
