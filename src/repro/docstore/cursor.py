"""Cursors: lazy, chainable result sets.

A cursor snapshots matching documents at creation (cloned on yield, so
callers can't corrupt the store) and supports ``sort``, ``skip``,
``limit`` chaining before iteration, mirroring the MongoDB driver API
GoFlow's data-management layer is written against. Yield-time copies use
the cheap JSON-document clone rather than ``copy.deepcopy`` — reads are
a hot path for analytics and the REST API.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.docstore.clone import json_clone
from repro.docstore.errors import DocStoreError
from repro.docstore.query import get_path, is_missing

SortSpec = Sequence[Tuple[str, int]]


class _SortKey:
    """Total-order wrapper so heterogeneous values sort deterministically.

    Missing values sort first ascending (MongoDB treats missing as null,
    lowest in its BSON comparison order); across types, values order by a
    type rank then value.
    """

    _RANKS = {"missing": 0, "null": 1, "number": 2, "str": 3, "other": 4}

    __slots__ = ("rank", "value")

    def __init__(self, value: Any) -> None:
        if is_missing(value):
            self.rank, self.value = self._RANKS["missing"], None
        elif value is None:
            self.rank, self.value = self._RANKS["null"], None
        elif isinstance(value, bool):
            self.rank, self.value = self._RANKS["other"], (str(type(value)), str(value))
        elif isinstance(value, (int, float)):
            self.rank, self.value = self._RANKS["number"], value
        elif isinstance(value, str):
            self.rank, self.value = self._RANKS["str"], value
        else:
            self.rank, self.value = self._RANKS["other"], (str(type(value)), str(value))

    def __lt__(self, other: "_SortKey") -> bool:
        if self.rank != other.rank:
            return self.rank < other.rank
        if self.value is None:
            return False
        return self.value < other.value

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _SortKey)
            and self.rank == other.rank
            and self.value == other.value
        )


def sort_documents(
    documents: List[Dict[str, Any]], spec: SortSpec
) -> List[Dict[str, Any]]:
    """Stable multi-key sort of ``documents`` by ``spec``.

    ``spec`` is a sequence of (field path, direction) with direction 1
    (ascending) or -1 (descending).
    """
    result = list(documents)
    for path, direction in reversed(list(spec)):
        if direction not in (1, -1):
            raise DocStoreError(f"sort direction must be 1 or -1, got {direction}")
        result.sort(
            key=lambda d: _SortKey(get_path(d, path)), reverse=(direction == -1)
        )
    return result


class Cursor:
    """Lazy result set over a materialized match list."""

    def __init__(self, documents: List[Dict[str, Any]]) -> None:
        self._documents = documents
        self._sort: Optional[SortSpec] = None
        self._skip = 0
        self._limit: Optional[int] = None
        self._consumed = False

    def sort(self, spec: Union[str, SortSpec], direction: int = 1) -> "Cursor":
        """Order results; ``spec`` is a field path or a list of pairs."""
        self._require_fresh()
        if isinstance(spec, str):
            self._sort = [(spec, direction)]
        else:
            self._sort = list(spec)
        return self

    def skip(self, count: int) -> "Cursor":
        """Skip the first ``count`` results."""
        self._require_fresh()
        if count < 0:
            raise DocStoreError(f"skip must be >= 0, got {count}")
        self._skip = count
        return self

    def limit(self, count: int) -> "Cursor":
        """Yield at most ``count`` results."""
        self._require_fresh()
        if count < 0:
            raise DocStoreError(f"limit must be >= 0, got {count}")
        self._limit = count
        return self

    def count(self) -> int:
        """Number of matching documents (ignores skip/limit)."""
        return len(self._documents)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        self._require_fresh()
        self._consumed = True
        docs = self._documents
        if self._sort is not None:
            docs = sort_documents(docs, self._sort)
        end = None if self._limit is None else self._skip + self._limit
        for doc in docs[self._skip : end]:
            yield json_clone(doc)

    def to_list(self) -> List[Dict[str, Any]]:
        """Materialize the cursor into a list."""
        return list(self)

    def first(self) -> Optional[Dict[str, Any]]:
        """The first result, or None."""
        for doc in self:
            return doc
        return None

    def _require_fresh(self) -> None:
        if self._consumed:
            raise DocStoreError("cursor already consumed")
