"""Columnar mirror and vectorized aggregation kernels.

The paper's analytics (per-model tables, cumulative-by-day, provider
shares over 23M observations) are column-shaped scans: they touch a
handful of hot fields across every document. Row-at-a-time dict walking
is the slowest possible way to serve them, so a collection can keep a
**columnar mirror**: per-field numpy arrays maintained incrementally on
the insert path and rebuilt lazily in one pass after updates/deletes
invalidate them.

Representation
--------------

Each mirrored field becomes a :class:`_Column`:

- ``codes`` — int64 dictionary codes, first-seen order; ``-1`` means
  the field is missing, ``-2`` means the value could not be encoded
  (unhashable sub-documents, arrays, NaN);
- ``nums``/``numeric`` — a float64 shadow plus a validity mask for the
  rows holding non-bool numbers (ranges, ``$sum``/``$avg``/...);
- ``truthy`` — Python truthiness of present, non-null values (the
  ``$sum:{$cond:[{$ifNull:[..., False]}, 1, 0]}`` localized-share
  pattern);
- degradation flags (``has_list``, ``has_opaque``, ``has_nan``, integer
  magnitude beyond 2**53, ...) that gate which kernels may touch the
  column.

Staleness follows the same write-marker protocol as
``MaterializedAnalytics``: the mirror records the collection's
``(inserts, updates, deletes)`` triple after every append; inserts that
advance the marker by exactly the batch size append in place, anything
else (updates, deletes, drops, surprises) invalidates, and the next
columnar query rebuilds from the live documents under the collection's
read lock.

Kernels
-------

:meth:`ColumnarMirror.execute` covers three pipeline shapes, falling
back to the compiled row engine for everything else:

- ``[$match?] [$addFields(floor/divide)*] $group …`` — vectorized
  filter + grouped fold; any stages after the ``$group`` run through
  the compiled engine over the (small) group rows;
- ``[$match?] $sort [$limit/$skip/$count…]`` — vectorized filter +
  ``np.lexsort`` with the same missing<null<number<string<other ranking
  as ``_SortKey``;
- ``[$match] [$limit/$skip/$count…]`` — vectorized filter alone.

Exactness is non-negotiable: the hypothesis oracle holds these kernels
row-exact (same rows, same order, same values) against both the
compiled and naive engines. That dictates some non-obvious choices —
``np.add.at`` instead of pairwise ``np.sum`` so float accumulation is
sequential exactly like Python's left-to-right ``+``, first-seen group
ordering recovered from ``np.unique(..., return_index=True)``, and
aggressive per-column fallback flags wherever float64 could diverge
from Python semantics (huge ints, NaN, bools in numeric positions).

numpy is optional: without it the mirror stays disabled, every query
uses the row engines, and ``explain``/``middleware_stats`` report why.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

try:  # optional dependency: the docstore must work without numpy
    import numpy as np
except Exception:  # pragma: no cover - exercised by stubbing np to None
    np = None  # type: ignore[assignment]

from repro import concurrency
from repro.docstore.clone import json_clone
from repro.docstore.errors import DocStoreError
from repro.docstore.query import _is_operator_doc, get_path, is_missing


def numpy_available() -> bool:
    """Whether the vectorized kernels can run in this interpreter."""
    return np is not None


_ABSENT = object()

_MISSING_CODE = -1
_OPAQUE_CODE = -2

#: Largest integer magnitude float64 represents exactly (2**53). A
#: column that saw more total integer magnitude than this falls back to
#: the row engines for numeric kernels instead of risking rounding
#: drift against Python's unbounded ints.
_EXACT_INT = 2 ** 53

_RANGE_OPS = ("$gt", "$gte", "$lt", "$lte")
_SUPPORTED_MATCH_OPS = frozenset(_RANGE_OPS) | {"$eq", "$ne", "$in", "$nin", "$exists"}
_TAIL_OPS = frozenset({"$limit", "$skip", "$count"})


def _hashable(value: Any) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True


class _Column:
    """One mirrored field: dictionary codes plus numeric/truthy shadows."""

    __slots__ = (
        "path",
        "simple",
        "codes",
        "nums",
        "numeric",
        "is_float",
        "truthy",
        "decode",
        "encode",
        "has_list",
        "has_opaque",
        "has_nan",
        "has_inf",
        "has_nonnum",
        "abs_int_total",
        "big_float",
        "_arrays",
        "_built",
    )

    def __init__(self, path: str) -> None:
        self.path = path
        self.simple = "." not in path
        self.reset()

    def reset(self) -> None:
        self.codes: List[int] = []
        self.nums: List[float] = []
        self.numeric: List[bool] = []
        self.is_float: List[bool] = []
        self.truthy: List[bool] = []
        self.decode: List[Any] = []
        self.encode: Dict[Any, int] = {}
        self.has_list = False
        self.has_opaque = False
        self.has_nan = False
        self.has_inf = False
        #: present values that are neither numbers nor None (strings,
        #: bools, documents): $floor/$divide over the column would raise.
        self.has_nonnum = False
        self.abs_int_total = 0
        self.big_float = False
        self._arrays: Optional[Tuple[Any, ...]] = None
        self._built = 0

    # -- ingest -----------------------------------------------------------------

    def append(self, doc: Dict[str, Any]) -> None:
        if self.simple:
            value = doc.get(self.path, _ABSENT)
        else:
            value = get_path(doc, self.path)
            if is_missing(value):
                value = _ABSENT
        self._append_value(value)

    def extend(self, docs: Sequence[Dict[str, Any]]) -> None:
        """Bulk form of :meth:`append` over ``docs``, in order.

        Homogeneous columns — all numbers, all strings/None, all
        documents/None, with no missing rows — are the overwhelmingly
        common shapes for mirrored observation fields; those are
        classified with one C-level type scan and filled with
        vectorized flag computation, which is what makes a cold mirror
        rebuild cheaper than one compiled row pass. Anything else falls
        back to the per-value path, value by value.
        """
        if self.simple:
            path = self.path
            values = [doc.get(path, _ABSENT) for doc in docs]
        else:
            values = []
            for doc in docs:
                value = get_path(doc, self.path)
                values.append(_ABSENT if is_missing(value) else value)
        if not values:
            return
        kinds = set(map(type, values))
        if kinds <= {int, float}:
            self._extend_numeric(values, int in kinds, float in kinds)
        elif kinds <= {str, type(None)}:
            self._extend_hashable(values, nonnum=str in kinds)
        elif dict in kinds and kinds <= {dict, type(None)}:
            self._extend_opaque(values)
        else:
            for value in values:
                self._append_value(value)

    def _extend_numeric(self, values: List[Any], has_int: bool, has_float: bool) -> None:
        try:
            arr = np.asarray(values, dtype=np.float64)
        except (OverflowError, ValueError, TypeError):
            for value in values:
                self._append_value(value)
            return
        n = len(values)
        self.truthy.extend((arr != 0.0).tolist())
        self.nums.extend(arr.tolist())
        self.numeric.extend([True] * n)
        float_flags: Optional[List[bool]] = None
        if has_float and not has_int:
            self.is_float.extend([True] * n)
        elif has_int and not has_float:
            self.is_float.extend([False] * n)
        else:
            float_flags = [type(value) is float for value in values]
            self.is_float.extend(float_flags)
        if has_int:
            if has_float:
                self.abs_int_total += sum(
                    -value if value < 0 else value
                    for value in values
                    if type(value) is int
                )
            else:
                self.abs_int_total += sum(map(abs, values))
        any_nan = False
        if has_float:
            nan_mask = np.isnan(arr)
            any_nan = bool(nan_mask.any())
            if any_nan:
                self.has_nan = True
            inf_mask = np.isinf(arr)
            if inf_mask.any():
                self.has_inf = True
            big = np.abs(arr) > float(_EXACT_INT)
            big &= ~inf_mask
            if float_flags is not None:
                big &= np.asarray(float_flags, dtype=bool)
            if big.any():
                self.big_float = True
        if any_nan:
            encode = self.encode
            decode = self.decode
            codes = self.codes
            for value in values:
                if value != value:
                    codes.append(_OPAQUE_CODE)
                    continue
                code = encode.get(value)
                if code is None:
                    code = len(decode)
                    encode[value] = code
                    decode.append(value)
                codes.append(code)
        else:
            self._encode_bulk(values)

    def _encode_bulk(self, values: List[Any]) -> None:
        """Dictionary-encode hashable ``values``: dedup to first-seen
        order at C level, register the unseen keys, then map the whole
        run through the encode table in one pass."""
        encode = self.encode
        decode = self.decode
        for value in dict.fromkeys(values):
            if value not in encode:
                encode[value] = len(decode)
                decode.append(value)
        self.codes.extend(map(encode.__getitem__, values))

    def _extend_hashable(self, values: List[Any], nonnum: bool) -> None:
        n = len(values)
        if nonnum:
            self.has_nonnum = True
        self.truthy.extend(map(bool, values))
        self.nums.extend([0.0] * n)
        self.numeric.extend([False] * n)
        self.is_float.extend([False] * n)
        self._encode_bulk(values)

    def _extend_opaque(self, values: List[Any]) -> None:
        n = len(values)
        self.has_nonnum = True
        self.has_opaque = True
        self.truthy.extend(map(bool, values))
        self.nums.extend([0.0] * n)
        self.numeric.extend([False] * n)
        self.is_float.extend([False] * n)
        encode = self.encode
        try:
            values.index(None)
        except ValueError:
            none_code = _OPAQUE_CODE  # no None rows; never used below
        else:
            none_code = encode.get(None)
            if none_code is None:
                none_code = len(self.decode)
                encode[None] = none_code
                self.decode.append(None)
        self.codes.extend(
            [_OPAQUE_CODE if value is not None else none_code for value in values]
        )

    def _append_value(self, value: Any) -> None:
        if value is _ABSENT:
            self.codes.append(_MISSING_CODE)
            self.nums.append(0.0)
            self.numeric.append(False)
            self.is_float.append(False)
            self.truthy.append(False)
            return
        self.truthy.append(value is not None and bool(value))
        if isinstance(value, list):
            # arrays match element-wise (multikey); no kernel models that
            self.has_list = True
            self.codes.append(_OPAQUE_CODE)
            self.nums.append(0.0)
            self.numeric.append(False)
            self.is_float.append(False)
            return
        is_bool = isinstance(value, bool)
        if not is_bool and isinstance(value, (int, float)):
            if value != value:  # NaN poisons dict encoding and min/max
                self.has_nan = True
                self.codes.append(_OPAQUE_CODE)
                self.nums.append(float("nan"))
                self.numeric.append(True)
                self.is_float.append(True)
                return
            if isinstance(value, float):
                self.is_float.append(True)
                if value in (float("inf"), float("-inf")):
                    self.has_inf = True
                elif value > _EXACT_INT or value < -_EXACT_INT:
                    self.big_float = True
                self.nums.append(value)
            else:
                self.is_float.append(False)
                self.abs_int_total += value if value >= 0 else -value
                try:
                    self.nums.append(float(value))
                except OverflowError:
                    self.abs_int_total = _EXACT_INT + 1
                    self.nums.append(0.0)
            self.numeric.append(True)
        else:
            if value is not None:
                self.has_nonnum = True
            self.nums.append(0.0)
            self.numeric.append(False)
            self.is_float.append(False)
        # dictionary-encode; bools are tagged so True never merges with 1,
        # exactly as the row engine's _eq/group_key do
        key = ("$bool", value) if is_bool else value
        try:
            code = self.encode.get(key)
        except TypeError:
            self.has_opaque = True
            self.codes.append(_OPAQUE_CODE)
            return
        if code is None:
            code = len(self.decode)
            self.encode[key] = code
            self.decode.append(value)
        self.codes.append(code)

    # -- capability flags --------------------------------------------------------

    @property
    def inexact(self) -> bool:
        return self.abs_int_total > _EXACT_INT

    @property
    def encodable(self) -> bool:
        """Every present value has a faithful dictionary code."""
        return not (self.has_list or self.has_opaque or self.has_nan)

    @property
    def sortable(self) -> bool:
        return self.encodable and not self.inexact and not self.big_float

    @property
    def numeric_exact(self) -> bool:
        """float64 arithmetic over the column matches Python exactly."""
        return not self.inexact and not self.has_nan

    @property
    def arith_clean(self) -> bool:
        """$floor($divide(...)) over the column neither raises nor drifts."""
        return not (
            self.has_nonnum
            or self.has_list
            or self.has_opaque
            or self.has_nan
            or self.has_inf
            or self.inexact
            or self.big_float
        )

    # -- consolidated views ------------------------------------------------------

    def arrays(self) -> Tuple[Any, Any, Any, Any, Any]:
        """(codes, nums, numeric, truthy, is_float) as numpy arrays."""
        n = len(self.codes)
        if self._arrays is None or self._built != n:
            if self._arrays is not None and 0 < self._built < n:
                start = self._built
                codes, nums, numeric, truthy, is_float = self._arrays
                self._arrays = (
                    np.concatenate([codes, np.asarray(self.codes[start:], dtype=np.int64)]),
                    np.concatenate([nums, np.asarray(self.nums[start:], dtype=np.float64)]),
                    np.concatenate([numeric, np.asarray(self.numeric[start:], dtype=bool)]),
                    np.concatenate([truthy, np.asarray(self.truthy[start:], dtype=bool)]),
                    np.concatenate([is_float, np.asarray(self.is_float[start:], dtype=bool)]),
                )
            else:
                self._arrays = (
                    np.asarray(self.codes, dtype=np.int64),
                    np.asarray(self.nums, dtype=np.float64),
                    np.asarray(self.numeric, dtype=bool),
                    np.asarray(self.truthy, dtype=bool),
                    np.asarray(self.is_float, dtype=bool),
                )
            self._built = n
        return self._arrays

    def value_at(self, row: int) -> Any:
        """The stored value at ``row``; missing resolves to None, as the
        row engine's ``doc.get``/``$field`` lookup does."""
        code = self.codes[row]
        return None if code < 0 else self.decode[code]


class _GroupPlan:
    __slots__ = ("id_kind", "id_payload", "accumulators")

    def __init__(self, id_kind: str, id_payload: Any, accumulators: List[Tuple[str, str, Any]]):
        self.id_kind = id_kind  # "const" | "field" | "doc"
        self.id_payload = id_payload
        self.accumulators = accumulators


class _Plan:
    __slots__ = ("kind", "match", "derived", "group", "sort", "tail", "fields")

    def __init__(self, kind, match, derived, group, sort, tail, fields):
        self.kind = kind  # "group" | "sort" | "match"
        self.match = match
        self.derived = derived  # name -> (source path, divisor)
        self.group = group
        self.sort = sort  # [(path, direction)] for kind == "sort"
        self.tail = tail
        self.fields = fields


def _str_cmp(op: str, value: str, operand: str) -> bool:
    if op == "$gt":
        return value > operand
    if op == "$gte":
        return value >= operand
    if op == "$lt":
        return value < operand
    return value <= operand


def _factorize(key_arrays: List[Any]) -> Tuple[Any, int, Any]:
    """Dense group ids in first-seen order from parallel int key arrays.

    Returns ``(gid, n_groups, reps)`` where ``gid[i]`` is the ordered
    group of row i and ``reps[g]`` is the position of group g's first
    row — the representative the output ``_id`` is decoded from.
    """
    combined = key_arrays[0].astype(np.int64)
    if combined.size == 0:
        return combined, 0, np.empty(0, dtype=np.int64)
    for extra in key_arrays[1:]:
        # densify both sides so the pairing can never overflow int64
        _, combined = np.unique(combined, return_inverse=True)
        _, extra = np.unique(extra.astype(np.int64), return_inverse=True)
        combined = combined * (int(extra.max()) + 1) + extra
    uniq, first, inverse = np.unique(combined, return_index=True, return_inverse=True)
    order = np.argsort(first, kind="stable")
    rank = np.empty(len(uniq), dtype=np.int64)
    rank[order] = np.arange(len(uniq), dtype=np.int64)
    return rank[inverse.reshape(-1)], len(uniq), first[order]


def _cond_truthy_path(operand: Any) -> Optional[str]:
    """Match ``{"$cond": [{"$ifNull": ["$f", False]}, 1, 0]}`` (list or
    if/then/else dict form); returns the field path or None."""
    if not isinstance(operand, dict) or set(operand) != {"$cond"}:
        return None
    cond = operand["$cond"]
    if isinstance(cond, dict):
        if set(cond) != {"if", "then", "else"}:
            return None
        test, then, other = cond["if"], cond["then"], cond["else"]
    elif isinstance(cond, (list, tuple)) and len(cond) == 3:
        test, then, other = cond
    else:
        return None
    if isinstance(then, bool) or then != 1 or isinstance(other, bool) or other != 0:
        return None
    if not isinstance(test, dict) or set(test) != {"$ifNull"}:
        return None
    args = test["$ifNull"]
    if not isinstance(args, (list, tuple)) or len(args) != 2 or args[1] is not False:
        return None
    source = args[0]
    if not isinstance(source, str) or not source.startswith("$") or len(source) < 2:
        return None
    return source[1:]


class ColumnarMirror:
    """Columnar shadow of a collection's hot fields plus its kernels.

    Lifecycle: the owning :class:`Collection` calls ``on_insert`` /
    ``on_insert_batch`` / ``invalidate`` with its write lock held, and
    ``execute`` with its read lock held. The mirror's own re-entrant
    lock (always acquired *after* the collection lock, never before)
    serializes columnar readers against each other and guards the
    pending-append buffers.
    """

    def __init__(self, collection: Any, fields: Sequence[str]) -> None:
        cleaned: List[str] = []
        for field in fields:
            if not isinstance(field, str) or not field or field.startswith("$"):
                raise DocStoreError(f"invalid mirrored field {field!r}")
            if field != "_id" and field not in cleaned:
                cleaned.append(field)
        if not cleaned:
            raise DocStoreError("columnar mirror needs at least one mirrored field")
        self._collection = collection
        self.fields: Tuple[str, ...] = tuple(cleaned)
        self.enabled = np is not None
        self.disabled_reason: Optional[str] = None if self.enabled else "numpy unavailable"
        self._lock = concurrency.make_rlock()
        self._columns: Dict[str, _Column] = {f: _Column(f) for f in self.fields}
        self._doc_refs: List[Dict[str, Any]] = []
        #: inserted docs accepted (marker verified) but not yet encoded
        #: into the columns — the write path stays O(1) per document and
        #: the next columnar query drains the tail in one pass.
        self._pending: List[Dict[str, Any]] = []
        self._marker: Optional[Tuple[int, int, int]] = None
        self._dirty = True
        self.rebuilds = 0
        self.appends = 0
        self.invalidations = 0
        self.kernel_hits = 0
        self.fallbacks = 0
        if self.enabled:
            # the caller (Collection.enable_columnar) holds the write
            # lock: build from the current documents now so the mirror
            # starts fresh and the very first insert appends in place.
            docs = list(collection._docs.values())
            for column in self._columns.values():
                column.extend(docs)
            self._doc_refs = docs
            self._marker = self._live_marker()
            self._dirty = False

    # -- maintenance (collection write lock held) --------------------------------

    def _live_marker(self) -> Tuple[int, int, int]:
        stats = self._collection.stats
        return (stats.inserts, stats.updates, stats.deletes)

    def on_insert(self, doc: Dict[str, Any]) -> None:
        self.on_insert_batch((doc,))

    def on_insert_batch(self, docs: Sequence[Dict[str, Any]]) -> None:
        """Append freshly inserted documents; the collection's counters
        are already bumped, so the marker must have advanced by exactly
        ``len(docs)`` inserts — anything else means a write path we did
        not see, and the mirror goes stale instead of guessing."""
        if not self.enabled or not docs:
            return
        with self._lock:
            if self._dirty:
                return
            marker = self._live_marker()
            prev = self._marker
            if prev is None or marker != (prev[0] + len(docs), prev[1], prev[2]):
                self._invalidate_locked()
                return
            self._pending.extend(docs)
            self._marker = marker
            self.appends += len(docs)

    def invalidate(self) -> None:
        """Updates/deletes/drops mutate rows in place; drop the mirror."""
        if not self.enabled:
            return
        with self._lock:
            self._invalidate_locked()

    def _invalidate_locked(self) -> None:
        if not self._dirty:
            self._dirty = True
            self.invalidations += 1
            for column in self._columns.values():
                column.reset()
            self._doc_refs = []
            self._pending = []

    def _ensure_fresh_locked(self) -> bool:
        """Lazy one-pass rebuild from the live documents; the caller
        holds the collection read lock, so the snapshot is coherent."""
        marker = self._live_marker()
        if not self._dirty and marker == self._marker:
            if self._pending:
                for column in self._columns.values():
                    column.extend(self._pending)
                self._doc_refs.extend(self._pending)
                self._pending = []
            return False
        for column in self._columns.values():
            column.reset()
        docs = list(self._collection._docs.values())
        self._doc_refs = docs
        self._pending = []
        for column in self._columns.values():
            column.extend(docs)
        self._marker = marker
        self._dirty = False
        self.rebuilds += 1
        return True

    def info(self) -> Dict[str, Any]:
        """Mirror health, surfaced via ``middleware_stats()['columnar']``."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "reason": self.disabled_reason,
                "fields": list(self.fields),
                "rows": (
                    len(self._doc_refs) + len(self._pending)
                    if not self._dirty
                    else None
                ),
                "fresh": not self._dirty,
                "rebuilds": self.rebuilds,
                "appends": self.appends,
                "invalidations": self.invalidations,
                "kernel_hits": self.kernel_hits,
                "fallbacks": self.fallbacks,
            }

    # -- dispatch (collection read lock held) ------------------------------------

    def execute(
        self, pipeline: List[Dict[str, Any]]
    ) -> Tuple[Optional[List[Dict[str, Any]]], Dict[str, Any], Optional[int]]:
        """Try to run ``pipeline`` vectorized.

        Returns ``(rows, detail, matched)``. ``rows is None`` means the
        pipeline is not covered (shape or data); ``detail`` always says
        why, and feeds ``AggregationResult.explain['columnar']``.
        """
        if not self.enabled:
            return None, {"covered": False, "reason": self.disabled_reason}, None
        plan, reason = self._structural_plan(pipeline)
        if plan is None:
            with self._lock:
                self.fallbacks += 1
            return None, {"covered": False, "reason": reason}, None
        with self._lock:
            rebuilt = self._ensure_fresh_locked()
            ok, reason = self._data_coverage(plan)
            if not ok:
                self.fallbacks += 1
                return None, {"covered": False, "reason": reason}, None
            rows, matched = self._run(plan)
            self.kernel_hits += 1
            detail = {
                "covered": True,
                "kernel": plan.kind,
                "fields": sorted(plan.fields),
                "rows": len(self._doc_refs),
                "rebuilt": rebuilt,
            }
            return rows, detail, matched

    # -- structural coverage -----------------------------------------------------

    def _structural_plan(self, pipeline: List[Dict[str, Any]]):
        stages: List[Tuple[str, Any]] = []
        for stage in pipeline:
            if not isinstance(stage, dict) or len(stage) != 1:
                return None, "malformed stage"
            stages.append(next(iter(stage.items())))
        if not stages:
            return None, "empty pipeline"
        fields: Set[str] = set()
        index = 0
        match_spec = None
        if stages[index][0] == "$match":
            spec = stages[index][1]
            reason = self._match_supported(spec, fields)
            if reason is not None:
                return None, reason
            match_spec = spec
            index += 1
        derived: Dict[str, Tuple[str, float]] = {}
        probe = index
        while probe < len(stages) and stages[probe][0] == "$addFields":
            parsed = self._derived_supported(stages[probe][1], fields)
            if parsed is None:
                break
            derived.update(parsed)
            probe += 1
        if probe < len(stages) and stages[probe][0] == "$group":
            group = self._group_supported(stages[probe][1], derived, fields)
            if group is None:
                return None, "unsupported $group shape"
            tail = [dict([stages[k]]) for k in range(probe + 1, len(stages))]
            return (
                _Plan("group", match_spec, derived, group, None, tail, fields),
                None,
            )
        if derived:
            return None, "$addFields without a covered $group"
        if index < len(stages) and stages[index][0] == "$sort":
            sort_spec = stages[index][1]
            reason = self._sort_supported(sort_spec, fields)
            if reason is not None:
                return None, reason
            tail = stages[index + 1 :]
            reason = self._tail_supported(tail)
            if reason is not None:
                return None, reason
            return (
                _Plan("sort", match_spec, {}, None, list(sort_spec.items()), tail, fields),
                None,
            )
        if match_spec is not None:
            tail = stages[index:]
            reason = self._tail_supported(tail)
            if reason is not None:
                return None, reason
            return _Plan("match", match_spec, {}, None, None, tail, fields), None
        return None, "pipeline shape not covered"

    @staticmethod
    def _tail_supported(tail: List[Tuple[str, Any]]) -> Optional[str]:
        for position, (op, spec) in enumerate(tail):
            if op not in _TAIL_OPS:
                return f"trailing {op} not vectorized"
            if op == "$count":
                # only as the final stage; the compiler validated the name
                if position != len(tail) - 1 or not isinstance(spec, str) or not spec:
                    return "$count placement not vectorized"
            elif not isinstance(spec, int) or isinstance(spec, bool) or spec < 0:
                return f"{op} operand not vectorized"
        return None

    def _match_supported(self, spec: Any, fields: Set[str]) -> Optional[str]:
        if not isinstance(spec, dict):
            return "malformed $match"
        for key, cond in spec.items():
            if not isinstance(key, str) or key.startswith("$"):
                return "logical operators not vectorized"
            if key == "_id" or key not in self._columns:
                return f"field {key!r} not mirrored"
            fields.add(key)
            if _is_operator_doc(cond):
                for op, operand in cond.items():
                    if op not in _SUPPORTED_MATCH_OPS:
                        return f"{op} not vectorized"
                    if op in ("$in", "$nin"):
                        if not isinstance(operand, (list, tuple)):
                            return f"{op} operand malformed"
                        for element in operand:
                            if isinstance(element, (list, dict)) or not _hashable(element):
                                return f"{op} with container operands"
                    elif op in _RANGE_OPS:
                        if isinstance(operand, bool) or not isinstance(
                            operand, (int, float, str)
                        ):
                            return "range operand not vectorized"
                        if isinstance(operand, float) and operand != operand:
                            return "NaN range operand"
                    elif op in ("$eq", "$ne"):
                        if isinstance(operand, (list, dict)) or not _hashable(operand):
                            return "container equality not vectorized"
            elif isinstance(cond, dict):
                return "document literal equality not vectorized"
            elif isinstance(cond, list) or not _hashable(cond):
                return "container equality not vectorized"
        return None

    def _derived_supported(
        self, spec: Any, fields: Set[str]
    ) -> Optional[Dict[str, Tuple[str, float]]]:
        if not isinstance(spec, dict) or not spec:
            return None
        out: Dict[str, Tuple[str, float]] = {}
        for name, expr in spec.items():
            if (
                not isinstance(name, str)
                or not name
                or "." in name
                or name.startswith("$")
                or name == "_id"
            ):
                return None
            parsed = self._floor_div(expr)
            if parsed is None:
                return None
            source, divisor = parsed
            if source not in self._columns:
                return None
            fields.add(source)
            out[name] = (source, float(divisor))
        return out

    def _floor_div(self, expr: Any) -> Optional[Tuple[str, float]]:
        """Match ``{"$floor": {"$divide": [src, k]}}`` where ``src`` is a
        mirrored field reference, optionally wrapped in a zero-default
        ``$ifNull`` (missing already folds to 0 in both engines)."""
        if not isinstance(expr, dict) or set(expr) != {"$floor"}:
            return None
        inner = expr["$floor"]
        if not isinstance(inner, dict) or set(inner) != {"$divide"}:
            return None
        args = inner["$divide"]
        if not isinstance(args, (list, tuple)) or len(args) != 2:
            return None
        source, divisor = args
        if (
            isinstance(divisor, bool)
            or not isinstance(divisor, (int, float))
            or divisor == 0
            or divisor != divisor
        ):
            return None
        if isinstance(source, dict) and set(source) == {"$ifNull"}:
            if_args = source["$ifNull"]
            if not isinstance(if_args, (list, tuple)) or len(if_args) != 2:
                return None
            source, default = if_args
            if isinstance(default, bool) or default != 0:
                return None
        if not isinstance(source, str) or not source.startswith("$") or len(source) < 2:
            return None
        path = source[1:]
        if path.startswith("$"):
            return None
        return path, float(divisor)

    def _group_supported(
        self, spec: Any, derived: Dict[str, Tuple[str, float]], fields: Set[str]
    ) -> Optional[_GroupPlan]:
        if not isinstance(spec, dict) or "_id" not in spec:
            return None

        def resolve(ref: Any) -> Optional[Tuple[str, str]]:
            if not isinstance(ref, str) or not ref.startswith("$") or len(ref) < 2:
                return None
            path = ref[1:]
            if path in derived:
                return ("derived", path)
            if path != "_id" and path in self._columns:
                fields.add(path)
                return ("col", path)
            return None

        id_expr = spec["_id"]
        if isinstance(id_expr, str) and id_expr.startswith("$"):
            ref = resolve(id_expr)
            if ref is None:
                return None
            id_kind, id_payload = "field", ref
        elif isinstance(id_expr, dict):
            if len(id_expr) == 1 and next(iter(id_expr)).startswith("$"):
                return None  # single-key $-dict is an operator expression
            refs = []
            for name, sub in id_expr.items():
                if not isinstance(name, str):
                    return None
                ref = resolve(sub)
                if ref is None:
                    return None
                refs.append((name, ref))
            if not refs:
                return None
            id_kind, id_payload = "doc", refs
        elif isinstance(id_expr, list):
            return None
        else:
            id_kind, id_payload = "const", id_expr

        accumulators: List[Tuple[str, str, Any]] = []
        for name, acc in spec.items():
            if name == "_id":
                continue
            if not isinstance(name, str) or not isinstance(acc, dict) or len(acc) != 1:
                return None
            op, operand = next(iter(acc.items()))
            if op == "$count":
                if operand != {}:
                    return None
                accumulators.append((name, "count", None))
            elif op == "$sum":
                if isinstance(operand, bool):
                    return None
                if isinstance(operand, int):
                    accumulators.append((name, "sum_lit", operand))
                    continue
                truthy_path = _cond_truthy_path(operand)
                if truthy_path is not None:
                    if truthy_path not in self._columns:
                        return None
                    fields.add(truthy_path)
                    accumulators.append((name, "cond_truthy", truthy_path))
                    continue
                ref = resolve(operand)
                if ref is None:
                    return None
                accumulators.append((name, "sum", ref))
            elif op in ("$avg", "$min", "$max", "$first", "$last", "$addToSet"):
                ref = resolve(operand)
                if ref is None:
                    return None
                if op == "$addToSet" and ref[0] == "derived":
                    return None
                accumulators.append((name, op[1:].lower() if op != "$addToSet" else "add_to_set", ref))
            else:
                return None
        return _GroupPlan(id_kind, id_payload, accumulators)

    def _sort_supported(self, spec: Any, fields: Set[str]) -> Optional[str]:
        if not isinstance(spec, dict) or not spec:
            return "empty $sort"
        for path, direction in spec.items():
            if not isinstance(path, str) or path not in self._columns:
                return f"sort field {path!r} not mirrored"
            if direction not in (1, -1) or isinstance(direction, bool):
                return "sort direction not vectorized"
            fields.add(path)
        return None

    # -- data coverage -----------------------------------------------------------

    def _data_coverage(self, plan: _Plan) -> Tuple[bool, Optional[str]]:
        if plan.match:
            for key, cond in plan.match.items():
                column = self._columns[key]
                ops = (
                    list(cond.items())
                    if _is_operator_doc(cond)
                    else [("$literal", cond)]
                )
                for op, operand in ops:
                    if op == "$exists":
                        continue
                    if column.has_list:
                        return False, f"field {key!r} holds arrays (multikey match)"
                    if op in _RANGE_OPS and not isinstance(operand, str) and not (
                        column.numeric_exact and not column.big_float
                    ):
                        return False, f"field {key!r} not float64-exact"
        for name, (source, _divisor) in plan.derived.items():
            if not self._columns[source].arith_clean:
                return False, f"derived field {name!r} source not arithmetic-clean"
        if plan.sort is not None:
            for path, _direction in plan.sort:
                if not self._columns[path].sortable:
                    return False, f"sort field {path!r} not totally orderable"
        group = plan.group
        if group is not None:
            refs = []
            if group.id_kind == "field":
                refs.append(group.id_payload)
            elif group.id_kind == "doc":
                refs.extend(ref for _name, ref in group.id_payload)
            for kind, payload in refs:
                if kind == "col" and not self._columns[payload].encodable:
                    return False, f"group key {payload!r} not dictionary-encodable"
            for _name, op, payload in group.accumulators:
                if op in ("sum", "avg", "min", "max"):
                    kind, path = payload
                    if kind == "col" and not self._columns[path].numeric_exact:
                        return False, f"field {path!r} not float64-exact"
                elif op in ("first", "last", "add_to_set"):
                    kind, path = payload
                    if kind == "col" and not self._columns[path].encodable:
                        return False, f"field {path!r} not dictionary-encodable"
        return True, None

    # -- kernels -----------------------------------------------------------------

    def _run(self, plan: _Plan) -> Tuple[List[Dict[str, Any]], int]:
        n = len(self._doc_refs)
        if plan.match:
            mask = self._match_mask(plan.match, n)
            idx = np.nonzero(mask)[0]
        else:
            idx = np.arange(n, dtype=np.int64)
        matched = int(idx.size)
        if plan.kind == "group":
            rows = self._run_group(plan, idx)
            if plan.tail:
                from repro.docstore.aggregate import compile_pipeline

                return compile_pipeline(plan.tail).run(rows), matched
            return [json_clone(row) for row in rows], matched
        if plan.kind == "sort":
            idx = self._run_sort(plan.sort, idx)
        return self._finish_indices(idx, plan.tail or []), matched

    def _finish_indices(
        self, idx: Any, tail: List[Tuple[str, Any]]
    ) -> List[Dict[str, Any]]:
        for op, spec in tail:
            if op == "$limit":
                idx = idx[:spec]
            elif op == "$skip":
                idx = idx[spec:]
            else:  # "$count", validated final
                return [{spec: int(idx.size)}]
        refs = self._doc_refs
        return [json_clone(refs[i]) for i in idx.tolist()]

    # -- $match mask -------------------------------------------------------------

    def _match_mask(self, spec: Dict[str, Any], n: int) -> Any:
        mask = np.ones(n, dtype=bool)
        for key, cond in spec.items():
            column = self._columns[key]
            if _is_operator_doc(cond):
                for op, operand in cond.items():
                    mask &= self._op_mask(column, op, operand, n)
            else:
                mask &= self._literal_mask(column, cond, n)
        return mask

    @staticmethod
    def _code_of(column: _Column, value: Any) -> Optional[int]:
        key = ("$bool", value) if isinstance(value, bool) else value
        return column.encode.get(key)

    def _eq_mask(self, column: _Column, value: Any, n: int) -> Any:
        code = self._code_of(column, value)
        if code is None:
            return np.zeros(n, dtype=bool)
        return column.arrays()[0] == code

    def _literal_mask(self, column: _Column, value: Any, n: int) -> Any:
        mask = self._eq_mask(column, value, n)
        if value is None:
            # a null literal also matches documents missing the field
            mask = mask | (column.arrays()[0] == _MISSING_CODE)
        return mask

    def _op_mask(self, column: _Column, op: str, operand: Any, n: int) -> Any:
        codes, nums, numeric, _truthy, _is_float = column.arrays()
        if op == "$exists":
            present = codes != _MISSING_CODE
            return present if operand else ~present
        if op == "$eq":
            return self._eq_mask(column, operand, n)
        if op == "$ne":
            # universal: missing/opaque rows can never equal the operand
            return ~self._eq_mask(column, operand, n)
        if op in ("$in", "$nin"):
            mask = np.zeros(n, dtype=bool)
            for element in operand:
                mask |= self._eq_mask(column, element, n)
            return mask if op == "$in" else ~mask
        if isinstance(operand, str):
            # string bounds: evaluate once per distinct value, then gather
            table = np.fromiter(
                (
                    isinstance(value, str) and _str_cmp(op, value, operand)
                    for value in column.decode
                ),
                dtype=bool,
                count=len(column.decode),
            )
            mask = np.zeros(n, dtype=bool)
            valid = codes >= 0
            mask[valid] = table[codes[valid]]
            return mask
        compare = {
            "$gt": np.greater,
            "$gte": np.greater_equal,
            "$lt": np.less,
            "$lte": np.less_equal,
        }[op]
        with np.errstate(invalid="ignore"):
            return numeric & compare(nums, operand)

    # -- $group kernel -----------------------------------------------------------

    def _derived_array(self, plan: _Plan, name: str, cache: Dict[str, Any]) -> Any:
        values = cache.get(name)
        if values is None:
            source, divisor = plan.derived[name]
            nums = self._columns[source].arrays()[1]
            values = np.floor(nums / divisor)
            cache[name] = values
        return values

    def _ref_value(self, ref: Tuple[str, str], row: int, plan: _Plan, cache: Dict[str, Any]) -> Any:
        kind, payload = ref
        if kind == "col":
            return self._columns[payload].value_at(row)
        # derived floor(x/k): the row engine's math.floor returns int
        return int(self._derived_array(plan, payload, cache)[row])

    def _group_key_array(
        self, ref: Tuple[str, str], idx: Any, plan: _Plan, cache: Dict[str, Any]
    ) -> Any:
        kind, payload = ref
        if kind == "col":
            column = self._columns[payload]
            codes = column.arrays()[0][idx]
            none_code = self._code_of(column, None)
            if none_code is None:
                none_code = len(column.decode)
            # missing and null group together (both resolve to None)
            return np.where(codes == _MISSING_CODE, none_code, codes)
        values = self._derived_array(plan, payload, cache)[idx]
        _, inverse = np.unique(values, return_inverse=True)
        return inverse.reshape(-1)

    def _numeric_view(
        self, ref: Tuple[str, str], idx: Any, plan: _Plan, cache: Dict[str, Any]
    ) -> Tuple[Any, Any, Any]:
        """(values, numeric mask, float mask) over the matched rows."""
        kind, payload = ref
        if kind == "col":
            _codes, nums, numeric, _truthy, is_float = self._columns[payload].arrays()
            return nums[idx], numeric[idx], is_float[idx]
        values = self._derived_array(plan, payload, cache)[idx]
        ones = np.ones(values.shape[0], dtype=bool)
        # math.floor yields Python ints in the row engine
        return values, ones, np.zeros(values.shape[0], dtype=bool)

    def _run_group(self, plan: _Plan, idx: Any) -> List[Dict[str, Any]]:
        group = plan.group
        cache: Dict[str, Any] = {}
        n_matched = int(idx.size)
        if group.id_kind == "const":
            gid = np.zeros(n_matched, dtype=np.int64)
            n_groups = 1 if n_matched else 0
            id_values = [json_clone(group.id_payload)] if n_groups else []
        else:
            refs = (
                [group.id_payload]
                if group.id_kind == "field"
                else [ref for _name, ref in group.id_payload]
            )
            keys = [self._group_key_array(ref, idx, plan, cache) for ref in refs]
            gid, n_groups, reps = _factorize(keys)
            if group.id_kind == "field":
                id_values = [
                    json_clone(self._ref_value(group.id_payload, int(idx[rep]), plan, cache))
                    for rep in reps
                ]
            else:
                id_values = [
                    {
                        name: json_clone(self._ref_value(ref, int(idx[rep]), plan, cache))
                        for name, ref in group.id_payload
                    }
                    for rep in reps
                ]
        outputs: List[List[Any]] = []
        arange_m = np.arange(n_matched, dtype=np.int64)
        for _name, op, payload in group.accumulators:
            if op == "count":
                counts = np.bincount(gid, minlength=n_groups)
                outputs.append([int(c) for c in counts])
            elif op == "sum_lit":
                counts = np.bincount(gid, minlength=n_groups)
                outputs.append([int(c) * payload for c in counts])
            elif op == "cond_truthy":
                truthy = self._columns[payload].arrays()[3][idx]
                totals = np.bincount(
                    gid, weights=truthy.astype(np.float64), minlength=n_groups
                )
                outputs.append([int(t) for t in totals])
            elif op in ("sum", "avg", "min", "max"):
                values, numeric, is_float = self._numeric_view(payload, idx, plan, cache)
                gid_f = gid[numeric]
                vals_f = values[numeric]
                counts = np.bincount(gid_f, minlength=n_groups)
                float_counts = np.bincount(gid[numeric & is_float], minlength=n_groups)
                if op == "sum":
                    totals = np.zeros(n_groups, dtype=np.float64)
                    # np.add.at accumulates sequentially in row order —
                    # bit-identical to Python's left-to-right `total += v`
                    np.add.at(totals, gid_f, vals_f)
                    outputs.append(
                        [
                            0
                            if counts[g] == 0
                            else (float(totals[g]) if float_counts[g] else int(totals[g]))
                            for g in range(n_groups)
                        ]
                    )
                elif op == "avg":
                    totals = np.zeros(n_groups, dtype=np.float64)
                    np.add.at(totals, gid_f, vals_f)
                    outputs.append(
                        [
                            float(totals[g] / counts[g]) if counts[g] else None
                            for g in range(n_groups)
                        ]
                    )
                else:
                    fill = np.inf if op == "min" else -np.inf
                    best = np.full(n_groups, fill, dtype=np.float64)
                    reducer = np.minimum if op == "min" else np.maximum
                    reducer.at(best, gid_f, vals_f)
                    outputs.append(
                        [
                            None
                            if counts[g] == 0
                            else (float(best[g]) if float_counts[g] else int(best[g]))
                            for g in range(n_groups)
                        ]
                    )
            elif op in ("first", "last"):
                if op == "first":
                    pos = np.full(n_groups, n_matched, dtype=np.int64)
                    np.minimum.at(pos, gid, arange_m)
                else:
                    pos = np.full(n_groups, -1, dtype=np.int64)
                    np.maximum.at(pos, gid, arange_m)
                outputs.append(
                    [
                        json_clone(self._ref_value(payload, int(idx[pos[g]]), plan, cache))
                        for g in range(n_groups)
                    ]
                )
            else:  # add_to_set
                column = self._columns[payload[1]]
                codes = column.arrays()[0][idx]
                none_code = self._code_of(column, None)
                if none_code is None:
                    none_code = len(column.decode)
                span = len(column.decode) + 1
                adjusted = np.where(codes == _MISSING_CODE, none_code, codes)
                pair = gid * span + adjusted
                uniq, first_pos = np.unique(pair, return_index=True)
                order = np.argsort(first_pos, kind="stable")
                sets: List[List[Any]] = [[] for _ in range(n_groups)]
                decode = column.decode
                for value in uniq[order].tolist():
                    g, code = divmod(value, span)
                    sets[g].append(
                        None if code >= len(decode) else json_clone(decode[code])
                    )
                outputs.append(sets)
        rows: List[Dict[str, Any]] = []
        for g in range(n_groups):
            row: Dict[str, Any] = {"_id": id_values[g]}
            for (name, _op, _payload), out in zip(group.accumulators, outputs):
                row[name] = out[g]
            rows.append(row)
        return rows

    # -- $sort kernel ------------------------------------------------------------

    def _run_sort(self, sort_spec: List[Tuple[str, int]], idx: Any) -> Any:
        if idx.size == 0:
            return idx
        keys: List[Any] = []
        for path, direction in reversed(sort_spec):
            rank, value = self._sort_keys(self._columns[path], idx)
            if direction == -1:
                rank = -rank
                value = -value
            keys.append(value)
            keys.append(rank)
        # np.lexsort is stable and treats the LAST key as primary, so the
        # first sort field's rank lands last; ties keep insertion order,
        # matching sort_documents / the fused top-k index tiebreak.
        perm = np.lexsort(keys)
        return idx[perm]

    def _sort_keys(self, column: _Column, idx: Any) -> Tuple[Any, Any]:
        """Per-row (type rank, order value) replicating ``_SortKey``:
        missing < null < numbers < strings < everything else."""
        codes, nums, numeric, _truthy, _is_float = column.arrays()
        codes = codes[idx]
        nums = nums[idx]
        numeric = numeric[idx]
        k = len(column.decode)
        rank_by_code = np.empty(k, dtype=np.int64)
        order_by_code = np.zeros(k, dtype=np.float64)
        strings: List[int] = []
        others: List[int] = []
        for code, value in enumerate(column.decode):
            if value is None:
                rank_by_code[code] = 1
            elif isinstance(value, bool):
                rank_by_code[code] = 4
                others.append(code)
            elif isinstance(value, (int, float)):
                rank_by_code[code] = 2
            elif isinstance(value, str):
                rank_by_code[code] = 3
                strings.append(code)
            else:
                rank_by_code[code] = 4
                others.append(code)
        decode = column.decode
        for position, code in enumerate(sorted(strings, key=lambda c: decode[c])):
            order_by_code[code] = float(position)
        for position, code in enumerate(
            sorted(others, key=lambda c: (str(type(decode[c])), str(decode[c])))
        ):
            order_by_code[code] = float(position)
        rank = np.zeros(idx.size, dtype=np.int64)
        value = np.zeros(idx.size, dtype=np.float64)
        valid = codes >= 0
        rank[valid] = rank_by_code[codes[valid]]
        value[valid] = order_by_code[codes[valid]]
        # numbers order by magnitude; per-code order only serves str/other
        value[numeric] = nums[numeric]
        return rank, value
