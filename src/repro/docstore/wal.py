"""Write-ahead logging and crash recovery for the document store.

The paper's deployment accumulated ~23M observations over ten months —
data that cannot live only in RAM. This module gives the docstore the
classic durability architecture (the same shape MongoDB's journal and
GSN's stream storage use):

- **Journal-before-apply.** Every collection mutation (`insert_one`,
  `insert_many`, `update`, `delete`, DDL) appends one record to an
  append-only log segment *before* touching in-memory state. Replaying
  the records in order onto the last snapshot deterministically
  re-derives the exact pre-crash state: inserts are journaled
  physically (documents with assigned ``_id``\\ s), updates and deletes
  logically (filter + operators + the pinned clock value).
- **Group commit.** ``fsync`` is the expensive part, so the log flushes
  by policy: ``"always"`` (sync every record — the safe default),
  ``"group"`` (sync once per ``group_records`` appends or
  ``group_interval_s`` seconds, whichever first — ingest batches share
  one sync), or ``"never"`` (the OS decides; benchmarking only).
- **Torn-write detection.** Each record line carries a CRC-32 of its
  payload. Recovery stops at the first record whose CRC, framing, or
  JSON fails — the torn tail a kill -9 mid-append leaves behind — and
  truncates the segment there. Everything before the tear replays;
  nothing after it can be trusted.
- **Rotation & compaction.** Segments rotate at a size bound. A
  checkpoint replays the *sealed* segments (pure disk work — the live
  store is never locked) into a shadow store, dumps it as an atomic
  snapshot whose header records ``wal_start`` (the first segment still
  live), then deletes the compacted segments. A crash at any point
  leaves either the old snapshot + all segments or the new snapshot
  whose header excludes the covered segments — never a double replay.
- **Exactly-once across the crash.** Ingest's dedup-ledger keys ride
  inside the very insert record they belong to (``meta.ledger``), so
  recovery rebuilds the ledger atomically with the documents: a
  retransmitted batch after recovery deduplicates exactly as it would
  have before the crash. Checkpoints persist the ledger as snapshot
  ``state`` so compaction never forgets it.

Record format, one per line::

    crc32hex SP json-body LF

where the body is ``{"lsn": N, "op": ..., "c": collection, ...}`` and
the CRC covers the body bytes. Segment files are named
``wal-<seq:08d>.log``; the snapshot is ``snapshot.jsonl``.

Kill-point testing: :attr:`WriteAheadLog.on_event` is a hook invoked at
named points (``append:written``, ``append:synced``, ``compact:*``).
The crash-recovery suite installs a seeded injector that raises there,
simulating a kill -9 at deterministic instants mid-commit.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro import concurrency
from repro.docstore.errors import DocStoreError
from repro.docstore.store import DocumentStore

SNAPSHOT_NAME = "snapshot.jsonl"
_SNAPSHOT_NEW = SNAPSHOT_NAME + ".new"
_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"

#: sync policies
SYNC_ALWAYS = "always"
SYNC_GROUP = "group"
SYNC_NEVER = "never"


@dataclass(frozen=True)
class WalConfig:
    """Durability knobs.

    Attributes:
        sync_policy: ``"always"`` fsyncs every record before the write
            is acknowledged; ``"group"`` batches fsyncs (group commit);
            ``"never"`` leaves flushing to the OS.
        group_records: under ``"group"``, sync once this many records
            are pending.
        group_interval_s: under ``"group"``, sync when this much wall
            time passed since the last sync (checked at append time).
        segment_max_bytes: rotate the active segment beyond this size.
        checkpoint_segments: compact automatically once this many
            sealed segments accumulate (0 disables auto-checkpoint).
    """

    sync_policy: str = SYNC_ALWAYS
    group_records: int = 64
    group_interval_s: float = 0.05
    segment_max_bytes: int = 8 * 1024 * 1024
    checkpoint_segments: int = 0

    def __post_init__(self) -> None:
        if self.sync_policy not in (SYNC_ALWAYS, SYNC_GROUP, SYNC_NEVER):
            raise DocStoreError(
                f"sync_policy must be always/group/never, got {self.sync_policy!r}"
            )
        if self.group_records < 1:
            raise DocStoreError("group_records must be >= 1")
        if self.group_interval_s < 0:
            raise DocStoreError("group_interval_s must be >= 0")
        if self.segment_max_bytes < 4096:
            raise DocStoreError("segment_max_bytes must be >= 4096")
        if self.checkpoint_segments < 0:
            raise DocStoreError("checkpoint_segments must be >= 0")


def _segment_path(directory: Path, seq: int) -> Path:
    return directory / f"{_SEGMENT_PREFIX}{seq:08d}{_SEGMENT_SUFFIX}"


def _segment_seq(path: Path) -> Optional[int]:
    name = path.name
    if not (name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)):
        return None
    try:
        return int(name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)])
    except ValueError:
        return None


def _list_segments(directory: Path) -> List[Tuple[int, Path]]:
    segments = []
    for path in directory.iterdir():
        seq = _segment_seq(path)
        if seq is not None:
            segments.append((seq, path))
    return sorted(segments)


def _encode_record(body: Dict[str, Any]) -> bytes:
    try:
        payload = json.dumps(body, ensure_ascii=False, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise DocStoreError(f"WAL record is not JSON-serializable: {exc}") from exc
    raw = payload.encode("utf-8")
    crc = zlib.crc32(raw) & 0xFFFFFFFF
    return b"%08x " % crc + raw + b"\n"


def _read_segment(path: Path) -> Tuple[int, List[Dict[str, Any]], bool]:
    """Parse a segment; returns ``(good_bytes, records, torn)``.

    ``good_bytes`` is the offset of the first unreadable byte — a torn
    segment is truncated there by the caller. Any framing, CRC, or JSON
    failure marks the tear; records after it are never trusted (a hole
    in the middle of a log makes everything behind it unreplayable).
    """
    data = path.read_bytes()
    records: List[Dict[str, Any]] = []
    offset = 0
    size = len(data)
    while offset < size:
        newline = data.find(b"\n", offset)
        if newline < 0:
            return offset, records, True  # partial tail line
        line = data[offset:newline]
        if len(line) < 10 or line[8:9] != b" ":
            return offset, records, True
        try:
            expected = int(line[:8], 16)
        except ValueError:
            return offset, records, True
        raw = line[9:]
        if zlib.crc32(raw) & 0xFFFFFFFF != expected:
            return offset, records, True
        try:
            record = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return offset, records, True
        if not isinstance(record, dict):
            return offset, records, True
        records.append(record)
        offset = newline + 1
    return offset, records, False


class WriteAheadLog:
    """The append side of the log: segments, group commit, compaction.

    Built by :func:`recover_store`; collections call :meth:`log` under
    their write lock (the WAL's own lock nests strictly inside every
    collection lock, and compaction never touches live collections, so
    there is no path back out).
    """

    def __init__(
        self,
        directory: Path,
        config: WalConfig,
        store_name: str,
        start_seq: int,
        next_lsn: int,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self._dir = Path(directory)
        self.config = config
        self._store_name = store_name
        self._clock = clock
        self._lock = concurrency.make_rlock()
        self._checkpoint_lock = concurrency.make_rlock()
        self._seq = start_seq
        self._lsn = next_lsn - 1
        self._synced_lsn = self._lsn
        self._pending = 0
        self._last_sync = time.monotonic()
        #: test hook: called with an event name at commit-critical
        #: points; a raising hook simulates a kill -9 at that instant.
        self.on_event: Optional[Callable[[str], None]] = None
        # observability
        self.appends = 0
        self.syncs = 0
        self.rotations = 0
        self.checkpoints = 0
        self.snapshot_docs: Optional[int] = None
        self.recovery_stats: Dict[str, Any] = {}
        self._handle = self._open_segment(self._seq)

    # -- events ---------------------------------------------------------------

    def _emit(self, event: str) -> None:
        hook = self.on_event
        if hook is not None:
            hook(event)

    # -- segment plumbing ------------------------------------------------------

    def _open_segment(self, seq: int):
        path = _segment_path(self._dir, seq)
        handle = open(path, "ab")
        header = {"lsn": 0, "op": "seg", "store": self._store_name, "seq": seq}
        handle.write(_encode_record(header))
        handle.flush()
        os.fsync(handle.fileno())
        return handle

    def _rotate_locked(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._synced_lsn = self._lsn
        self._pending = 0
        self._seq += 1
        self._handle = self._open_segment(self._seq)
        self.rotations += 1

    # -- append ---------------------------------------------------------------

    def log(self, record: Dict[str, Any]) -> int:
        """Append one record; returns its LSN.

        The record is fully serialized before any byte is written, so a
        non-JSON-serializable document aborts the caller's mutation with
        the log untouched. Sync behaviour follows the configured
        policy; rotation happens after the append when the segment
        outgrew its bound.
        """
        with self._lock:
            body = dict(record)
            body["lsn"] = self._lsn + 1
            line = _encode_record(body)
            self._handle.write(line)
            self._lsn += 1
            self._pending += 1
            self.appends += 1
            self._emit("append:written")
            self._maybe_sync_locked()
            if self._handle.tell() >= self.config.segment_max_bytes:
                self._rotate_locked()
                if self.config.checkpoint_segments:
                    sealed = sum(
                        1 for seq, _ in _list_segments(self._dir) if seq < self._seq
                    )
                    if sealed >= self.config.checkpoint_segments:
                        self.checkpoint()
            return self._lsn

    def _maybe_sync_locked(self) -> None:
        policy = self.config.sync_policy
        if policy == SYNC_NEVER:
            self._handle.flush()
            return
        if policy == SYNC_GROUP:
            elapsed = time.monotonic() - self._last_sync
            if (
                self._pending < self.config.group_records
                and elapsed < self.config.group_interval_s
            ):
                self._handle.flush()
                return
        self._sync_locked()
        self._emit("append:synced")

    def _sync_locked(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._synced_lsn = self._lsn
        self._pending = 0
        self._last_sync = time.monotonic()
        self.syncs += 1

    def sync(self) -> None:
        """Force everything appended so far to disk."""
        with self._lock:
            self._sync_locked()

    def close(self) -> None:
        """Flush, sync, and close the active segment."""
        with self._lock:
            self._sync_locked()
            self._handle.close()

    # -- compaction ------------------------------------------------------------

    def checkpoint(self) -> int:
        """Compact sealed segments into a fresh snapshot; returns doc count.

        Rotation (under the append lock) seals the current segment;
        everything afterwards is pure file work against sealed data —
        the live store keeps ingesting into the new segment unblocked.
        A shadow store is replayed from the old snapshot plus the
        sealed segments, dumped atomically with ``wal_start`` pointing
        at the first live segment, and only then are the compacted
        segments removed. Every intermediate crash state recovers
        correctly (see the kill-point suite).
        """
        with self._checkpoint_lock:
            with self._lock:
                self._rotate_locked()
                live_start = self._seq
            self._emit("compact:rotated")
            shadow, state, shadow_stats = _replay_directory(
                self._dir,
                name=self._store_name,
                clock=None,
                upto_seq=live_start - 1,
                repair=False,
            )
            # LSNs stay monotonic across compactions: the snapshot
            # remembers the highest one it swallowed.
            state["_wal"] = {"lsn": shadow_stats["last_lsn"]}
            new_path = self._dir / _SNAPSHOT_NEW
            from repro.docstore.persistence import dump_store

            docs = dump_store(
                shadow,
                new_path,
                state=state,
                wal_start=live_start,
            )
            self._emit("compact:pre-replace")
            os.replace(new_path, self._dir / SNAPSHOT_NAME)
            _fsync_dir(self._dir)
            self._emit("compact:snapshot-replaced")
            for seq, path in _list_segments(self._dir):
                if seq < live_start:
                    path.unlink(missing_ok=True)
            _fsync_dir(self._dir)
            self._emit("compact:segments-deleted")
            self.checkpoints += 1
            self.snapshot_docs = docs
            return docs

    # -- observability ----------------------------------------------------------

    def info(self) -> Dict[str, Any]:
        """Journal health for ``middleware_stats()["durability"]``."""
        with self._lock:
            return {
                "enabled": True,
                "dir": str(self._dir),
                "sync_policy": self.config.sync_policy,
                "active_segment": self._seq,
                "segments": len(_list_segments(self._dir)),
                "lsn": self._lsn,
                "synced_lsn": self._synced_lsn,
                "appends": self.appends,
                "syncs": self.syncs,
                "rotations": self.rotations,
                "checkpoints": self.checkpoints,
                "snapshot_docs": self.snapshot_docs,
                "recovery": dict(self.recovery_stats),
            }


# -- recovery ------------------------------------------------------------------


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def _learn_ledger(ledger: "OrderedDict[str, Any]", meta: Dict[str, Any]) -> None:
    """Learn dedup keys (and, sharded, their regions) from a record.

    ``regions`` is a parallel list added by sharded deployments; plain
    deployments journal keys only and every entry learns as ``True``.
    """
    keys = meta.get("ledger")
    if keys is None:
        keys = meta.get("keys", ())
    regions = meta.get("regions", ())
    for index, key in enumerate(keys):
        key = str(key)
        value = regions[index] if index < len(regions) else True
        if key in ledger:
            ledger.move_to_end(key)
        ledger[key] = value


def _apply_record(
    store: DocumentStore,
    record: Dict[str, Any],
    ledger: "OrderedDict[str, Any]",
    stats: Dict[str, int],
) -> None:
    """Replay one journal record onto ``store``.

    Failed operations are skipped, not fatal: an op that raised live
    (say a unique-index violation journaled before the violation was
    discovered) deterministically raises again on the identical
    pre-state, which is exactly the equivalence recovery needs. Ledger
    keys are learned only when their insert record applied — mirroring
    the live rule that the ledger learns an id only after a successful
    insert.
    """
    op = record.get("op")
    try:
        if op == "seg":
            return
        if op in ("insert", "insert_many"):
            collection = store.collection(record["c"])
            docs = record["docs"]
            if op == "insert":
                collection.insert_one(docs[0], copy=False)
            else:
                collection.insert_many(docs, copy=False)
            _learn_ledger(ledger, record.get("meta", {}))
        elif op == "ledger":
            # standalone dedup-state carrier: shard rebalancing hands
            # off ledger entries whose documents no longer exist
            _learn_ledger(ledger, record)
        elif op == "update":
            store.collection(record["c"])._update(
                record["filter"],
                record["update"],
                multi=record["multi"],
                upsert=record["upsert"],
                now=record.get("now"),
            )
        elif op == "delete":
            collection = store.collection(record["c"])
            if record["multi"]:
                collection.delete_many(record["filter"])
            else:
                collection.delete_one(record["filter"])
        elif op == "create_index":
            store.collection(record["c"]).create_index(
                record["path"],
                kind=record["kind"],
                unique=record.get("unique", False),
                exist_ok=True,
            )
        elif op == "drop_index":
            collection = store.collection(record["c"])
            if record["path"] in collection.index_paths():
                collection.drop_index(record["path"])
        elif op == "drop_docs":
            store.collection(record["c"]).drop()
        elif op == "drop_collection":
            if store.has_collection(record["c"]):
                store.drop_collection(record["c"])
        else:
            stats["unknown_ops"] = stats.get("unknown_ops", 0) + 1
            return
        stats["records_replayed"] += 1
    except DocStoreError:
        stats["records_skipped"] += 1


def _replay_directory(
    directory: Path,
    name: str,
    clock: Optional[Callable[[], float]],
    upto_seq: Optional[int] = None,
    repair: bool = True,
) -> Tuple[DocumentStore, Dict[str, Any], Dict[str, Any]]:
    """Rebuild a store from ``directory``'s snapshot + segments.

    Returns ``(store, state, stats)``. ``upto_seq`` bounds which
    segments replay (compaction's shadow pass stops before the live
    segment). With ``repair`` the torn tail is truncated on disk and
    segments beyond a tear are deleted; the shadow pass never modifies
    files.
    """
    from repro.docstore.persistence import load_snapshot

    stats: Dict[str, Any] = {
        "records_replayed": 0,
        "records_skipped": 0,
        "torn_segments": 0,
        "segments_replayed": 0,
        "snapshot_loaded": False,
    }
    snapshot_path = directory / SNAPSHOT_NAME
    if snapshot_path.exists():
        store, state, wal_start = load_snapshot(snapshot_path, clock=clock)
        stats["snapshot_loaded"] = True
    else:
        store = DocumentStore(name=name, clock=clock)
        state = {}
        wal_start = 1
    snapshot_regions = state.get("dedup_regions", ())
    ledger: "OrderedDict[str, Any]" = OrderedDict(
        (
            str(key),
            snapshot_regions[i] if i < len(snapshot_regions) else True,
        )
        for i, key in enumerate(state.get("dedup_ledger", ()))
    )
    last_lsn = int(state.pop("_wal", {}).get("lsn", 0))
    last_seq = wal_start - 1
    torn = False
    for seq, path in _list_segments(directory):
        if upto_seq is not None and seq > upto_seq:
            break
        if seq < wal_start:
            # already folded into the snapshot by a checkpoint whose
            # segment deletion did not finish before the crash
            if repair:
                path.unlink(missing_ok=True)
            continue
        if torn:
            # nothing after a tear is replayable: a hole in the log
            # breaks the determinism every later record depends on
            if repair:
                path.unlink(missing_ok=True)
            continue
        good_bytes, records, torn_here = _read_segment(path)
        for record in records:
            lsn = record.get("lsn")
            if isinstance(lsn, int) and lsn > last_lsn:
                last_lsn = lsn
            if record.get("op") == "seg":
                seg_store = record.get("store")
                if isinstance(seg_store, str) and not stats["snapshot_loaded"]:
                    store.name = seg_store
                continue
            _apply_record(store, record, ledger, stats)
        stats["segments_replayed"] += 1
        last_seq = max(last_seq, seq)
        if torn_here:
            torn = True
            stats["torn_segments"] += 1
            if repair:
                with path.open("ab") as handle:
                    handle.truncate(good_bytes)
                    handle.flush()
                    os.fsync(handle.fileno())
    state["dedup_ledger"] = list(ledger)
    state["dedup_regions"] = list(ledger.values())
    stats["last_lsn"] = last_lsn
    stats["last_seq"] = last_seq
    return store, state, stats


def recover_store(
    directory: Union[str, Path],
    name: str = "goflow",
    clock: Optional[Callable[[], float]] = None,
    config: Optional[WalConfig] = None,
) -> DocumentStore:
    """Open a durable store: replay snapshot + WAL, attach a live journal.

    Safe on an empty or missing directory (a fresh durable store), after
    a clean shutdown, and after a kill -9 at any commit point: stray
    temporary files are removed, the torn tail is truncated, stale
    compacted segments are dropped, and appends resume in a fresh
    segment so a truncated file is never written into again.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    config = config or WalConfig()
    # stray intermediates from a crashed dump/checkpoint: the atomic
    # rename never happened, so their content is covered by the log
    for stray in directory.iterdir():
        if stray.name.endswith(".tmp") or stray.name == _SNAPSHOT_NEW:
            stray.unlink(missing_ok=True)
    store, state, stats = _replay_directory(directory, name=name, clock=clock)
    wal = WriteAheadLog(
        directory,
        config,
        store_name=store.name,
        start_seq=stats["last_seq"] + 1,
        next_lsn=stats["last_lsn"] + 1,
        clock=clock,
    )
    wal.recovery_stats = stats
    store.recovered_state = state
    store.attach_journal(wal)
    return store
