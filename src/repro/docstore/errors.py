"""Document-store errors."""

from __future__ import annotations

from repro.errors import ReproError


class DocStoreError(ReproError):
    """Base class for document-store errors."""


class QuerySyntaxError(DocStoreError):
    """A filter document uses an unknown or malformed operator."""


class UpdateSyntaxError(DocStoreError):
    """An update document uses an unknown or malformed operator."""


class DuplicateKeyError(DocStoreError):
    """An insert or update violated a unique index."""


class IndexError_(DocStoreError):
    """Index declaration or maintenance failure."""
