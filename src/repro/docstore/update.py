"""Update-document application.

``apply_update(document, update)`` returns a new document with the update
applied; the input document is never mutated (callers rely on this for
snapshot isolation of cursors). Supported operators: ``$set $unset $inc
$mul $min $max $push $pull $addToSet $rename $currentDate``; an update
document without any ``$`` operator is a full replacement (the ``_id`` is
preserved).
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Optional

from repro.docstore.errors import UpdateSyntaxError

_NUMERIC = (int, float)


def _ensure_parent(document: Dict[str, Any], path: str) -> tuple:
    """Walk/create dict parents for a dotted path; return (parent, leaf key)."""
    segments = path.split(".")
    current: Any = document
    for segment in segments[:-1]:
        if isinstance(current, list):
            if not segment.isdigit() or int(segment) >= len(current):
                raise UpdateSyntaxError(
                    f"cannot traverse array with segment {segment!r} in path {path!r}"
                )
            current = current[int(segment)]
            continue
        if not isinstance(current, dict):
            raise UpdateSyntaxError(
                f"cannot create path {path!r} through non-document value"
            )
        if segment not in current or not isinstance(current[segment], (dict, list)):
            current[segment] = {}
        current = current[segment]
    return current, segments[-1]


def _leaf_get(parent: Any, key: str) -> Any:
    if isinstance(parent, list):
        if key.isdigit() and int(key) < len(parent):
            return parent[int(key)]
        return None
    return parent.get(key)


def _leaf_set(parent: Any, key: str, value: Any) -> None:
    if isinstance(parent, list):
        if not key.isdigit():
            raise UpdateSyntaxError(f"array index expected, got {key!r}")
        idx = int(key)
        while len(parent) <= idx:
            parent.append(None)
        parent[idx] = value
    else:
        parent[key] = value


def _numeric_or_raise(value: Any, path: str, op: str) -> float:
    if isinstance(value, bool) or not isinstance(value, _NUMERIC):
        raise UpdateSyntaxError(f"{op} target {path!r} is not numeric: {value!r}")
    return value


def _op_set(doc: Dict[str, Any], path: str, value: Any) -> None:
    parent, key = _ensure_parent(doc, path)
    _leaf_set(parent, key, value)


def _op_unset(doc: Dict[str, Any], path: str, _value: Any) -> None:
    parent, key = _ensure_parent(doc, path)
    if isinstance(parent, dict):
        parent.pop(key, None)
    elif isinstance(parent, list) and key.isdigit() and int(key) < len(parent):
        parent[int(key)] = None  # MongoDB leaves a null hole


def _op_inc(doc: Dict[str, Any], path: str, amount: Any) -> None:
    if isinstance(amount, bool) or not isinstance(amount, _NUMERIC):
        raise UpdateSyntaxError(f"$inc amount must be numeric, got {amount!r}")
    parent, key = _ensure_parent(doc, path)
    current = _leaf_get(parent, key)
    if current is None:
        _leaf_set(parent, key, amount)
    else:
        _leaf_set(parent, key, _numeric_or_raise(current, path, "$inc") + amount)


def _op_mul(doc: Dict[str, Any], path: str, factor: Any) -> None:
    if isinstance(factor, bool) or not isinstance(factor, _NUMERIC):
        raise UpdateSyntaxError(f"$mul factor must be numeric, got {factor!r}")
    parent, key = _ensure_parent(doc, path)
    current = _leaf_get(parent, key)
    if current is None:
        _leaf_set(parent, key, 0)
    else:
        _leaf_set(parent, key, _numeric_or_raise(current, path, "$mul") * factor)


def _op_min(doc: Dict[str, Any], path: str, bound: Any) -> None:
    parent, key = _ensure_parent(doc, path)
    current = _leaf_get(parent, key)
    if current is None or bound < current:
        _leaf_set(parent, key, bound)


def _op_max(doc: Dict[str, Any], path: str, bound: Any) -> None:
    parent, key = _ensure_parent(doc, path)
    current = _leaf_get(parent, key)
    if current is None or bound > current:
        _leaf_set(parent, key, bound)


def _op_push(doc: Dict[str, Any], path: str, value: Any) -> None:
    parent, key = _ensure_parent(doc, path)
    current = _leaf_get(parent, key)
    if current is None:
        current = []
        _leaf_set(parent, key, current)
    if not isinstance(current, list):
        raise UpdateSyntaxError(f"$push target {path!r} is not an array")
    if isinstance(value, dict) and "$each" in value:
        each = value["$each"]
        if not isinstance(each, list):
            raise UpdateSyntaxError("$each requires a list")
        current.extend(copy.deepcopy(each))
    else:
        current.append(copy.deepcopy(value))


def _op_pull(doc: Dict[str, Any], path: str, condition: Any) -> None:
    from repro.docstore.query import matches  # local import: avoid cycle

    parent, key = _ensure_parent(doc, path)
    current = _leaf_get(parent, key)
    if current is None:
        return
    if not isinstance(current, list):
        raise UpdateSyntaxError(f"$pull target {path!r} is not an array")
    if isinstance(condition, dict):
        kept = [
            e
            for e in current
            if not (isinstance(e, dict) and matches(e, condition))
        ]
    else:
        kept = [e for e in current if e != condition]
    _leaf_set(parent, key, kept)


def _op_add_to_set(doc: Dict[str, Any], path: str, value: Any) -> None:
    parent, key = _ensure_parent(doc, path)
    current = _leaf_get(parent, key)
    if current is None:
        current = []
        _leaf_set(parent, key, current)
    if not isinstance(current, list):
        raise UpdateSyntaxError(f"$addToSet target {path!r} is not an array")
    values = value["$each"] if isinstance(value, dict) and "$each" in value else [value]
    for item in values:
        if item not in current:
            current.append(copy.deepcopy(item))


def _op_rename(doc: Dict[str, Any], path: str, new_path: Any) -> None:
    if not isinstance(new_path, str) or not new_path:
        raise UpdateSyntaxError("$rename target must be a non-empty string")
    parent, key = _ensure_parent(doc, path)
    if isinstance(parent, dict) and key in parent:
        value = parent.pop(key)
        new_parent, new_key = _ensure_parent(doc, new_path)
        _leaf_set(new_parent, new_key, value)


_OPERATORS: Dict[str, Callable[[Dict[str, Any], str, Any], None]] = {
    "$set": _op_set,
    "$unset": _op_unset,
    "$inc": _op_inc,
    "$mul": _op_mul,
    "$min": _op_min,
    "$max": _op_max,
    "$push": _op_push,
    "$pull": _op_pull,
    "$addToSet": _op_add_to_set,
    "$rename": _op_rename,
}


def apply_update(
    document: Dict[str, Any],
    update: Dict[str, Any],
    now: Optional[float] = None,
) -> Dict[str, Any]:
    """Return a new document with ``update`` applied to ``document``.

    Args:
        document: the current document (not mutated).
        update: operator document or replacement document.
        now: simulated time for ``$currentDate``.
    """
    if not isinstance(update, dict):
        raise UpdateSyntaxError(f"update must be a dict, got {type(update).__name__}")
    has_ops = any(k.startswith("$") for k in update)
    has_plain = any(not k.startswith("$") for k in update)
    if has_ops and has_plain:
        raise UpdateSyntaxError("cannot mix update operators and replacement fields")

    if not has_ops:
        replacement = copy.deepcopy(update)
        if "_id" in document:
            replacement["_id"] = document["_id"]
        return replacement

    result = copy.deepcopy(document)
    for op, spec in update.items():
        if op == "$currentDate":
            if not isinstance(spec, dict):
                raise UpdateSyntaxError("$currentDate requires a field document")
            for path in spec:
                _op_set(result, path, now if now is not None else 0.0)
            continue
        handler = _OPERATORS.get(op)
        if handler is None:
            raise UpdateSyntaxError(f"unknown update operator {op!r}")
        if not isinstance(spec, dict):
            raise UpdateSyntaxError(f"{op} requires a field document")
        for path, value in spec.items():
            if path == "_id" and op != "$setOnInsert":
                raise UpdateSyntaxError("the _id field cannot be updated")
            handler(result, path, value)
    return result
