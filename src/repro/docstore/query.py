"""Filter-document evaluation (the query engine).

A filter is a dict mapping field paths to either literal values
(equality) or operator documents (``{"$gt": 5}``). Top-level logical
operators ``$and``/``$or``/``$nor`` combine sub-filters. Field paths are
dotted and traverse nested documents and arrays with MongoDB's implicit
array-element matching: ``{"tags": "x"}`` matches a document whose
``tags`` array contains ``"x"``.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Tuple

from repro.docstore.errors import QuerySyntaxError

_MISSING = object()


def get_path(document: Any, path: str) -> Any:
    """Resolve a dotted ``path`` in ``document``.

    Returns the sentinel ``_MISSING`` (exported as :func:`is_missing`)
    when the path does not exist. Integer path segments index arrays;
    non-integer segments applied to an array map over its elements and
    collect hits (MongoDB's multi-value resolution).
    """
    current = document
    for segment in path.split("."):
        if isinstance(current, dict):
            if segment not in current:
                return _MISSING
            current = current[segment]
        elif isinstance(current, list):
            if segment.isdigit():
                idx = int(segment)
                if idx >= len(current):
                    return _MISSING
                current = current[idx]
            else:
                collected = []
                for element in current:
                    if isinstance(element, dict) and segment in element:
                        collected.append(element[segment])
                if not collected:
                    return _MISSING
                current = collected
        else:
            return _MISSING
    return current


def is_missing(value: Any) -> bool:
    """True when a :func:`get_path` result means "field absent"."""
    return value is _MISSING


def _values_for_matching(resolved: Any) -> List[Any]:
    """The candidate values an operator is tested against.

    MongoDB tests array fields both as the whole array and element-wise.
    """
    if is_missing(resolved):
        return []
    if isinstance(resolved, list):
        return [resolved] + list(resolved)
    return [resolved]


_COMPARABLE = (int, float)


def _ordered(a: Any, b: Any) -> bool:
    """Whether ``a`` and ``b`` can be compared with < / >."""
    if isinstance(a, bool) or isinstance(b, bool):
        return isinstance(a, bool) and isinstance(b, bool)
    if isinstance(a, _COMPARABLE) and isinstance(b, _COMPARABLE):
        return True
    return type(a) is type(b) and isinstance(a, (str, tuple))


def _eq(a: Any, b: Any) -> bool:
    if isinstance(a, bool) != isinstance(b, bool):
        return False
    try:
        return bool(a == b)
    except Exception:
        return False


def _compare_op(op: str, value: Any, operand: Any) -> bool:
    if op == "$eq":
        return _eq(value, operand)
    if op == "$ne":
        return not _eq(value, operand)
    if not _ordered(value, operand):
        return False
    if op == "$gt":
        return value > operand
    if op == "$gte":
        return value >= operand
    if op == "$lt":
        return value < operand
    if op == "$lte":
        return value <= operand
    raise QuerySyntaxError(f"unknown comparison operator {op!r}")


def _is_operator_doc(value: Any) -> bool:
    return isinstance(value, dict) and value and all(
        isinstance(k, str) and k.startswith("$") for k in value
    )


def _match_operators(resolved: Any, operators: Dict[str, Any]) -> bool:
    for op, operand in operators.items():
        if not _match_one_operator(resolved, op, operand):
            return False
    return True


def _match_one_operator(resolved: Any, op: str, operand: Any) -> bool:
    candidates = _values_for_matching(resolved)

    if op == "$exists":
        present = not is_missing(resolved)
        return present if operand else not present

    if op == "$ne":
        # $ne is a universal: no candidate may equal the operand, and a
        # missing field satisfies it (MongoDB semantics).
        return all(not _eq(v, operand) for v in candidates)

    if op in ("$eq", "$gt", "$gte", "$lt", "$lte"):
        return any(_compare_op(op, v, operand) for v in candidates)

    if op == "$in":
        if not isinstance(operand, (list, tuple)):
            raise QuerySyntaxError("$in requires a list")
        return any(any(_eq(v, o) for o in operand) for v in candidates)

    if op == "$nin":
        if not isinstance(operand, (list, tuple)):
            raise QuerySyntaxError("$nin requires a list")
        return all(all(not _eq(v, o) for o in operand) for v in candidates)

    if op == "$regex":
        if not isinstance(operand, str):
            raise QuerySyntaxError("$regex requires a string pattern")
        compiled = re.compile(operand)
        return any(isinstance(v, str) and compiled.search(v) for v in candidates)

    if op == "$mod":
        if (
            not isinstance(operand, (list, tuple))
            or len(operand) != 2
            or operand[0] == 0
        ):
            raise QuerySyntaxError("$mod requires [divisor, remainder] with divisor != 0")
        divisor, remainder = operand
        return any(
            isinstance(v, _COMPARABLE) and not isinstance(v, bool) and v % divisor == remainder
            for v in candidates
        )

    if op == "$size":
        if not isinstance(operand, int) or isinstance(operand, bool):
            raise QuerySyntaxError("$size requires an integer")
        return isinstance(resolved, list) and len(resolved) == operand

    if op == "$all":
        if not isinstance(operand, (list, tuple)):
            raise QuerySyntaxError("$all requires a list")
        if not isinstance(resolved, list):
            return all(_eq(resolved, o) for o in operand)
        return all(any(_eq(e, o) for e in resolved) for o in operand)

    if op == "$elemMatch":
        if not isinstance(operand, dict):
            raise QuerySyntaxError("$elemMatch requires a filter document")
        if not isinstance(resolved, list):
            return False
        return any(
            matches(e, operand) if isinstance(e, dict) else _match_operators(e, operand)
            for e in resolved
        )

    if op == "$not":
        if isinstance(operand, dict):
            return not _match_operators(resolved, operand)
        raise QuerySyntaxError("$not requires an operator document")

    raise QuerySyntaxError(f"unknown query operator {op!r}")


def matches(document: Dict[str, Any], filter_doc: Dict[str, Any]) -> bool:
    """True when ``document`` satisfies ``filter_doc``."""
    if not isinstance(filter_doc, dict):
        raise QuerySyntaxError(
            f"filter must be a dict, got {type(filter_doc).__name__}"
        )
    for key, condition in filter_doc.items():
        if key == "$and":
            if not isinstance(condition, (list, tuple)) or not condition:
                raise QuerySyntaxError("$and requires a non-empty list")
            if not all(matches(document, sub) for sub in condition):
                return False
        elif key == "$or":
            if not isinstance(condition, (list, tuple)) or not condition:
                raise QuerySyntaxError("$or requires a non-empty list")
            if not any(matches(document, sub) for sub in condition):
                return False
        elif key == "$nor":
            if not isinstance(condition, (list, tuple)) or not condition:
                raise QuerySyntaxError("$nor requires a non-empty list")
            if any(matches(document, sub) for sub in condition):
                return False
        elif key.startswith("$"):
            raise QuerySyntaxError(f"unknown top-level operator {key!r}")
        else:
            resolved = get_path(document, key)
            if _is_operator_doc(condition):
                if not _match_operators(resolved, condition):
                    return False
            else:
                candidates = _values_for_matching(resolved)
                if condition is None:
                    # null matches both explicit null and missing field
                    if not (is_missing(resolved) or any(v is None for v in candidates)):
                        return False
                elif not any(_eq(v, condition) for v in candidates):
                    return False
    return True


def extract_equality_predicates(filter_doc: Dict[str, Any]) -> Dict[str, Any]:
    """Field -> literal for top-level equality predicates (for the planner)."""
    out: Dict[str, Any] = {}
    for key, condition in filter_doc.items():
        if key.startswith("$"):
            continue
        if _is_operator_doc(condition):
            if set(condition) == {"$eq"}:
                out[key] = condition["$eq"]
        elif not isinstance(condition, dict):
            out[key] = condition
    return out


def extract_range_predicates(
    filter_doc: Dict[str, Any],
) -> Dict[str, Tuple[Any, bool, Any, bool]]:
    """Field -> (low, low_inclusive, high, high_inclusive) for the planner.

    Only plain numeric/string bounds from top-level operator documents
    are extracted; anything fancier falls back to a scan.
    """
    out: Dict[str, Tuple[Any, bool, Any, bool]] = {}
    for key, condition in filter_doc.items():
        if key.startswith("$") or not _is_operator_doc(condition):
            continue
        low: Any = None
        low_inc = True
        high: Any = None
        high_inc = True
        relevant = False
        for op, operand in condition.items():
            if op == "$gt":
                low, low_inc, relevant = operand, False, True
            elif op == "$gte":
                low, low_inc, relevant = operand, True, True
            elif op == "$lt":
                high, high_inc, relevant = operand, False, True
            elif op == "$lte":
                high, high_inc, relevant = operand, True, True
        if relevant:
            out[key] = (low, low_inc, high, high_inc)
    return out
