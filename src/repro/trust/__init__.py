"""Truth discovery: contributor reliability from the data itself.

§2 (Sensing): "the trustworthiness of the contributing user [28]
significantly affect[s] the quality of the sensing"; §2 (Analyzing):
"data analysis greatly benefits from processing at the server level,
where it is possible to correlate data at a larger scale [27, 28]" —
the cited works are truth-discovery algorithms over crowd-sensed data.

This package implements continuous-value truth discovery in the CRH
style (Li et al., KDD'14/'15 family): jointly estimate

- the **truth** of each entity (here: a grid cell x time window's noise
  level), and
- each **contributor's reliability weight**,

by alternating weighted-truth updates and error-based weight updates.
Reliable contributors pull truths toward themselves; contributors whose
claims sit far from the consensus lose weight. The weights then feed the
assimilation's observation-error model (an untrusted phone's reading
gets a wide R entry).
"""

from repro.trust.truthdiscovery import (
    Claim,
    TruthDiscovery,
    TruthDiscoveryResult,
    claims_from_documents,
)

__all__ = [
    "Claim",
    "TruthDiscovery",
    "TruthDiscoveryResult",
    "claims_from_documents",
]
