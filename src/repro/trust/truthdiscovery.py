"""CRH-style truth discovery for continuous claims.

The model: contributors :math:`c` make claims :math:`x_{c,e}` about
entities :math:`e`. The algorithm alternates:

- truth update: :math:`t_e = \\frac{\\sum_c w_c x_{c,e}}{\\sum_c w_c}`
  over the contributors claiming :math:`e`;
- weight update: :math:`w_c = -\\log\\left(\\frac{\\sum_e (x_{c,e} -
  t_e)^2 / \\sigma_e^2}{\\max_{c'} \\cdot}\\right)` — contributors whose
  normalized squared error is small get large weights (the standard CRH
  continuous formulation, with per-entity variance normalization so
  loud/variable places don't dominate).

Convergence: the objective is block-coordinate descended; iteration
stops when truths move less than ``tol`` or ``max_iterations`` is hit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Claim:
    """One contributor's claim about one entity."""

    contributor: str
    entity: Hashable
    value: float


@dataclass
class TruthDiscoveryResult:
    """Estimated truths and contributor weights."""

    truths: Dict[Hashable, float]
    weights: Dict[str, float]
    iterations: int
    converged: bool

    def reliability_rank(self) -> List[str]:
        """Contributors from most to least reliable."""
        return sorted(self.weights, key=lambda c: -self.weights[c])

    def sensor_sigma_db(
        self, contributor: str, base_sigma_db: float = 2.0, cap_db: float = 12.0
    ) -> float:
        """Map a weight to an observation-error std for assimilation.

        The most reliable contributor keeps ``base_sigma_db``; weights
        scale the variance inversely, capped at ``cap_db``.
        """
        weights = np.array(list(self.weights.values()))
        peak = float(weights.max()) if weights.size else 1.0
        weight = self.weights.get(contributor, 0.0)
        if weight <= 0 or peak <= 0:
            return cap_db
        sigma = base_sigma_db * float(np.sqrt(peak / weight))
        return float(min(sigma, cap_db))


def claims_from_documents(
    documents: Sequence[Mapping[str, Any]],
    cell_m: float = 500.0,
    window_s: float = 3600.0,
) -> List[Claim]:
    """Build claims from stored observation documents.

    The entity of a document is its (space cell, time window): two
    contributors measuring the same block in the same hour claim the
    same underlying quantity.
    """
    if cell_m <= 0 or window_s <= 0:
        raise ConfigurationError("cell and window sizes must be > 0")
    claims: List[Claim] = []
    for document in documents:
        location = document.get("location")
        contributor = document.get("contributor")
        if not isinstance(location, Mapping) or contributor is None:
            continue
        entity = (
            int(location["x_m"] // cell_m),
            int(location["y_m"] // cell_m),
            int(document["taken_at"] // window_s),
        )
        claims.append(
            Claim(
                contributor=str(contributor),
                entity=entity,
                value=float(document["noise_dba"]),
            )
        )
    return claims


class TruthDiscovery:
    """The CRH solver."""

    def __init__(
        self,
        max_iterations: int = 50,
        tol: float = 1e-4,
        min_claims_per_entity: int = 2,
    ) -> None:
        if max_iterations < 1:
            raise ConfigurationError("max_iterations must be >= 1")
        if min_claims_per_entity < 1:
            raise ConfigurationError("min_claims_per_entity must be >= 1")
        self.max_iterations = max_iterations
        self.tol = tol
        self.min_claims_per_entity = min_claims_per_entity

    def run(self, claims: Sequence[Claim]) -> TruthDiscoveryResult:
        """Estimate truths and weights from ``claims``.

        When a contributor makes several claims on the same entity they
        are pre-averaged (their repeated measurements of one place-hour
        are one opinion, not several votes).
        """
        if not claims:
            raise ConfigurationError("truth discovery needs at least one claim")

        merged: Dict[Tuple[str, Hashable], List[float]] = {}
        for claim in claims:
            merged.setdefault((claim.contributor, claim.entity), []).append(
                claim.value
            )
        by_entity: Dict[Hashable, List[Tuple[str, float]]] = {}
        for (contributor, entity), values in merged.items():
            by_entity.setdefault(entity, []).append(
                (contributor, float(np.mean(values)))
            )
        # entities with a single opinion carry no cross-checking signal
        by_entity = {
            entity: opinions
            for entity, opinions in by_entity.items()
            if len(opinions) >= self.min_claims_per_entity
        }
        if not by_entity:
            raise ConfigurationError(
                "no entity has enough independent contributors "
                f"(need {self.min_claims_per_entity})"
            )
        contributors = sorted(
            {contributor for opinions in by_entity.values() for contributor, _ in opinions}
        )
        weights = {contributor: 1.0 for contributor in contributors}
        truths: Dict[Hashable, float] = {}

        # per-entity scale for error normalization (variance of opinions)
        scales: Dict[Hashable, float] = {}
        for entity, opinions in by_entity.items():
            values = np.array([value for _, value in opinions])
            scales[entity] = float(max(np.var(values), 1.0))

        converged = False
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            # truth update
            new_truths: Dict[Hashable, float] = {}
            for entity, opinions in by_entity.items():
                numerator = sum(weights[c] * v for c, v in opinions)
                denominator = sum(weights[c] for c, v in opinions)
                new_truths[entity] = numerator / max(denominator, 1e-12)
            # convergence check on truth movement
            if truths:
                movement = max(
                    abs(new_truths[entity] - truths[entity]) for entity in new_truths
                )
                if movement < self.tol:
                    truths = new_truths
                    converged = True
                    break
            truths = new_truths
            # weight update
            errors = {contributor: 0.0 for contributor in contributors}
            for entity, opinions in by_entity.items():
                for contributor, value in opinions:
                    errors[contributor] += (
                        (value - truths[entity]) ** 2 / scales[entity]
                    )
            total_error = sum(errors.values())
            if total_error <= 0:
                weights = {contributor: 1.0 for contributor in contributors}
                converged = True
                break
            for contributor in contributors:
                share = max(errors[contributor] / total_error, 1e-12)
                weights[contributor] = max(-float(np.log(share)), 1e-6)

        return TruthDiscoveryResult(
            truths=truths,
            weights=weights,
            iterations=iterations,
            converged=converged,
        )
