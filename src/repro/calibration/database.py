"""The per-model calibration database.

§5.2's empirical finding: "the heterogeneity of sensors may be tamed at
the model level" — within one model, devices agree (Figure 15), so one
fit per model calibrates the whole sub-fleet. Records are persisted in
the document store so GoFlow background jobs can apply them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.calibration.fit import CalibrationFit, fit_linear_response
from repro.core.errors import NotFoundError, ValidationError
from repro.docstore.store import DocumentStore


@dataclass(frozen=True)
class CalibrationRecord:
    """One model's calibration entry."""

    model: str
    fit: CalibrationFit
    method: str  # 'reference-party' | 'crowd'


class CalibrationDatabase:
    """Stores and applies per-model calibrations."""

    def __init__(self, store: Optional[DocumentStore] = None) -> None:
        self._records: Dict[str, CalibrationRecord] = {}
        self._collection = (
            store.collection("calibration") if store is not None else None
        )

    # -- maintenance ----------------------------------------------------------

    def record_party(
        self, model: str, reference_db: np.ndarray, measured_db: np.ndarray
    ) -> CalibrationRecord:
        """Ingest a calibration-party session for ``model``."""
        fit = fit_linear_response(reference_db, measured_db)
        record = CalibrationRecord(model=model, fit=fit, method="reference-party")
        self._store(record)
        return record

    def record_fit(
        self, model: str, fit: CalibrationFit, method: str = "crowd"
    ) -> CalibrationRecord:
        """Store an externally computed fit (e.g. crowd calibration)."""
        if method not in ("reference-party", "crowd"):
            raise ValidationError(f"unknown calibration method {method!r}")
        record = CalibrationRecord(model=model, fit=fit, method=method)
        self._store(record)
        return record

    def _store(self, record: CalibrationRecord) -> None:
        self._records[record.model] = record
        if self._collection is not None:
            self._collection.update_one(
                {"model": record.model},
                {
                    "$set": {
                        "gain": record.fit.gain,
                        "offset_db": record.fit.offset_db,
                        "residual_std_db": record.fit.residual_std_db,
                        "sample_count": record.fit.sample_count,
                        "method": record.method,
                    }
                },
                upsert=True,
            )

    # -- lookup & application ------------------------------------------------------

    def has(self, model: str) -> bool:
        """Whether a calibration exists for ``model``."""
        return model in self._records

    def get(self, model: str) -> CalibrationRecord:
        """The calibration record of ``model``."""
        record = self._records.get(model)
        if record is None:
            raise NotFoundError(f"no calibration for model {model!r}")
        return record

    def models(self) -> List[str]:
        """Calibrated model names."""
        return sorted(self._records)

    def correct(self, model: str, measured_db: float) -> float:
        """Correct one measurement; uncalibrated models pass through."""
        record = self._records.get(model)
        if record is None:
            return measured_db
        return record.fit.correct(measured_db)

    def sensor_sigma_db(self, model: str, default: float = 5.0) -> float:
        """Residual sensor error after calibration (feeds BLUE's R).

        Uncalibrated models get the pessimistic ``default``.
        """
        record = self._records.get(model)
        if record is None:
            return default
        return max(0.5, record.fit.residual_std_db)
