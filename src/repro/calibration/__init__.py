"""Sensor calibration.

§5.2: "we are thus maintaining a calibration database where we assess
the bias of a particular model compared to a reference sound level
meter ... we therefore organize 'calibration parties' to meet with our
users and calibrate their phones." And §8 (future work): "We expect
crowd-sensing to be accompanied with crowd-calibration which calibrates
individual devices based on each other's devices."

- :mod:`repro.calibration.fit` — least-squares gain/offset fits against
  a reference sound-level meter (the calibration-party procedure);
- :mod:`repro.calibration.database` — the per-model calibration
  database, with the paper's central claim baked into its design:
  calibration is maintained *per model*, not per device;
- :mod:`repro.calibration.crowdcal` — the future-work extension:
  co-location-based crowd calibration that estimates relative offsets
  between models from pairs of observations taken close together in
  space and time, anchored at reference-calibrated models.
"""

from repro.calibration.fit import CalibrationFit, fit_linear_response
from repro.calibration.database import CalibrationDatabase, CalibrationRecord
from repro.calibration.crowdcal import CoLocationPair, CrowdCalibrator, find_pairs

__all__ = [
    "CalibrationDatabase",
    "CalibrationFit",
    "CalibrationRecord",
    "CoLocationPair",
    "CrowdCalibrator",
    "find_pairs",
    "fit_linear_response",
]
