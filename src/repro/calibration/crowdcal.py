"""Crowd calibration (the paper's future-work extension, §8).

"We expect crowd-sensing to be accompanied with crowd-calibration which
calibrates individual devices based on each other's devices."

Method: when two devices observe the same place at (nearly) the same
time, the *difference* of their readings estimates the difference of
their offsets. Collecting many such co-location pairs yields a linear
system over per-model offsets:

    offset[a] - offset[b] ≈ reading_a - reading_b      (for each pair)

solved in the least-squares sense, anchored by one or more models whose
offsets are known from reference calibration (otherwise the system is
only determined up to a global constant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.calibration.fit import CalibrationFit
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CoLocationPair:
    """Two near-simultaneous, near-co-located readings."""

    model_a: str
    model_b: str
    reading_a_db: float
    reading_b_db: float

    @property
    def delta_db(self) -> float:
        """Estimated offset difference offset[a] - offset[b]."""
        return self.reading_a_db - self.reading_b_db


def find_pairs(
    documents: Sequence[Mapping],
    max_distance_m: float = 50.0,
    max_dt_s: float = 120.0,
) -> List[CoLocationPair]:
    """Mine co-location pairs out of stored observation documents.

    Documents need ``model``, ``noise_dba``, ``taken_at`` and a
    ``location`` with ``x_m``/``y_m``. A simple time-sorted sweep keeps
    the scan near-linear.
    """
    if max_distance_m <= 0 or max_dt_s <= 0:
        raise ConfigurationError("pair thresholds must be > 0")
    localized = [
        d
        for d in documents
        if isinstance(d.get("location"), Mapping)
        and "x_m" in d["location"]
        and "y_m" in d["location"]
    ]
    localized.sort(key=lambda d: d["taken_at"])
    pairs: List[CoLocationPair] = []
    for i, doc_a in enumerate(localized):
        for doc_b in localized[i + 1 :]:
            if doc_b["taken_at"] - doc_a["taken_at"] > max_dt_s:
                break
            if doc_a["model"] == doc_b["model"]:
                continue
            dx = doc_a["location"]["x_m"] - doc_b["location"]["x_m"]
            dy = doc_a["location"]["y_m"] - doc_b["location"]["y_m"]
            if dx * dx + dy * dy > max_distance_m**2:
                continue
            pairs.append(
                CoLocationPair(
                    model_a=doc_a["model"],
                    model_b=doc_b["model"],
                    reading_a_db=doc_a["noise_dba"],
                    reading_b_db=doc_b["noise_dba"],
                )
            )
    return pairs


class CrowdCalibrator:
    """Solves the pairwise-difference system for per-model offsets."""

    def __init__(self, anchors: Optional[Mapping[str, float]] = None) -> None:
        #: model -> known offset (from reference calibration parties)
        self.anchors: Dict[str, float] = dict(anchors or {})

    def solve(
        self, pairs: Sequence[CoLocationPair], anchor_weight: float = 100.0
    ) -> Dict[str, float]:
        """Estimate every observed model's offset (dB).

        Returns model -> estimated offset. Raises when the pair graph
        is empty, or when no anchor is available at all (the system
        would be rank-deficient).
        """
        if not pairs:
            raise ConfigurationError("no co-location pairs to solve from")
        models = sorted(
            {p.model_a for p in pairs}
            | {p.model_b for p in pairs}
            | set(self.anchors)
        )
        index = {m: k for k, m in enumerate(models)}
        anchored = [m for m in models if m in self.anchors]
        if not anchored:
            raise ConfigurationError(
                "crowd calibration needs at least one anchored model"
            )
        rows: List[np.ndarray] = []
        rhs: List[float] = []
        for pair in pairs:
            row = np.zeros(len(models))
            row[index[pair.model_a]] = 1.0
            row[index[pair.model_b]] = -1.0
            rows.append(row)
            rhs.append(pair.delta_db)
        for model in anchored:
            row = np.zeros(len(models))
            row[index[model]] = anchor_weight
            rows.append(row)
            rhs.append(anchor_weight * self.anchors[model])
        design = np.vstack(rows)
        target = np.asarray(rhs)
        solution, _, _, _ = np.linalg.lstsq(design, target, rcond=None)
        return {model: float(solution[index[model]]) for model in models}

    def to_fits(
        self, offsets: Mapping[str, float], residual_std_db: float = 2.5
    ) -> Dict[str, CalibrationFit]:
        """Wrap solved offsets as unit-gain calibration fits."""
        return {
            model: CalibrationFit(
                gain=1.0,
                offset_db=offset,
                residual_std_db=residual_std_db,
                sample_count=0,
            )
            for model, offset in offsets.items()
        }
