"""Least-squares calibration fits.

A calibration party puts a phone next to a reference sound-level meter
through a range of noise levels; the fit estimates the device's linear
response ``measured = gain * true + offset`` and its inverse is then
applied to field measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CalibrationFit:
    """An estimated linear response with fit quality."""

    gain: float
    offset_db: float
    residual_std_db: float
    sample_count: int

    def correct(self, measured_db: float) -> float:
        """Map a field measurement back to the true-level estimate."""
        if self.gain == 0:
            raise ConfigurationError("cannot invert a zero-gain fit")
        return (measured_db - self.offset_db) / self.gain

    def correct_many(self, measured_db: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`correct`."""
        if self.gain == 0:
            raise ConfigurationError("cannot invert a zero-gain fit")
        return (np.asarray(measured_db, dtype=float) - self.offset_db) / self.gain


def fit_linear_response(
    reference_db: np.ndarray, measured_db: np.ndarray
) -> CalibrationFit:
    """Least-squares fit of measured = gain * reference + offset.

    Requires at least 3 points spanning a non-degenerate level range.
    """
    reference = np.asarray(reference_db, dtype=float)
    measured = np.asarray(measured_db, dtype=float)
    if reference.shape != measured.shape:
        raise ConfigurationError("reference and measured shapes differ")
    if reference.size < 3:
        raise ConfigurationError("calibration needs at least 3 samples")
    if float(np.std(reference)) < 1e-9:
        raise ConfigurationError("reference levels are degenerate (no spread)")
    design = np.column_stack([reference, np.ones_like(reference)])
    coeffs, _, _, _ = np.linalg.lstsq(design, measured, rcond=None)
    gain, offset = float(coeffs[0]), float(coeffs[1])
    residuals = measured - (gain * reference + offset)
    return CalibrationFit(
        gain=gain,
        offset_db=offset,
        residual_std_db=float(np.std(residuals)),
        sample_count=int(reference.size),
    )
