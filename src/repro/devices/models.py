"""Phone models and the Figure 9 seed table.

Each :class:`PhoneModel` bundles what the reproduction needs to know
about a model:

- the **deployment weights** straight out of Figure 9 (device count,
  measurement count, localized-measurement count) used to draw the
  synthetic fleet and to validate the analysis pipeline;
- the **microphone response** (gain, offset, noise floor, clipping)
  responsible for the per-model peak shift in Figure 14;
- hardware constants for the battery model.

The microphone offsets are synthetic but deterministic per model: the
paper reports *that* the dB(A) peak varies significantly across models
(Figure 14) and that within a model users agree (Figure 15); it does not
publish per-model bias values, so we derive a stable offset in
[-8 dB, +8 dB] from the model name.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MicrophoneResponse:
    """Linear-in-dB microphone model: measured = gain * true + offset.

    Attributes:
        gain: multiplicative response in dB space (1.0 = faithful).
        offset_db: additive bias in dB(A) — the dominant heterogeneity
            across models per §5.2.
        noise_floor_db: readings below this are reported at the floor
            (cheap MEMS microphones cannot measure silence).
        clip_db: readings above this saturate.
        jitter_db: standard deviation of per-measurement noise.
    """

    gain: float = 1.0
    offset_db: float = 0.0
    noise_floor_db: float = 28.0
    clip_db: float = 95.0
    jitter_db: float = 2.0

    def apply(self, true_db: float, noise: float = 0.0) -> float:
        """Map a true SPL to what this microphone reports."""
        measured = self.gain * true_db + self.offset_db + noise * self.jitter_db
        return min(max(measured, self.noise_floor_db), self.clip_db)

    def invert(self, measured_db: float) -> float:
        """Best-effort inverse (used by per-model calibration)."""
        if self.gain == 0:
            raise ConfigurationError("cannot invert a zero-gain response")
        return (measured_db - self.offset_db) / self.gain


def _stable_unit(name: str, salt: str) -> float:
    """Deterministic float in [0, 1) derived from (name, salt)."""
    digest = hashlib.sha256(f"{salt}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def derive_mic_response(model_name: str) -> MicrophoneResponse:
    """Deterministic synthetic microphone response for a model name."""
    offset = (_stable_unit(model_name, "mic-offset") - 0.5) * 16.0  # [-8, 8) dB
    gain = 0.92 + _stable_unit(model_name, "mic-gain") * 0.16  # [0.92, 1.08)
    floor = 26.0 + _stable_unit(model_name, "mic-floor") * 8.0  # [26, 34)
    return MicrophoneResponse(
        gain=round(gain, 4),
        offset_db=round(offset, 3),
        noise_floor_db=round(floor, 2),
    )


@dataclass(frozen=True)
class PhoneModel:
    """One phone model of the fleet."""

    name: str
    manufacturer: str
    devices: int
    measurements: int
    localized: int
    mic: MicrophoneResponse
    battery_capacity_j: float = 38000.0  # ~ 2800 mAh @ 3.8 V
    has_fused_provider: bool = True

    @property
    def localized_share(self) -> float:
        """Fraction of this model's measurements carrying a location."""
        if self.measurements == 0:
            return 0.0
        return self.localized / self.measurements

    @property
    def measurements_per_device(self) -> float:
        """Average contribution intensity of this model's owners."""
        if self.devices == 0:
            return 0.0
        return self.measurements / self.devices


def _make(
    manufacturer: str,
    name: str,
    devices: int,
    measurements: int,
    localized: int,
    battery_j: float,
    fused: bool = True,
) -> PhoneModel:
    return PhoneModel(
        name=name,
        manufacturer=manufacturer,
        devices=devices,
        measurements=measurements,
        localized=localized,
        mic=derive_mic_response(name),
        battery_capacity_j=battery_j,
        has_fused_provider=fused,
    )


#: Figure 9, verbatim: the 20 most popular models of the SoundCity user
#: base, ordered by localized-measurement count as in the paper. Battery
#: capacities are the models' public spec sheets (joules at nominal 3.8 V).
#: The paper notes "few models provide fused data" — the fused flag marks
#: the subset that does.
TOP20_MODELS: List[PhoneModel] = [
    _make("SAMSUNG", "GT-I9505", 253, 2_346_755, 1_014_261, 35_600),  # Galaxy S4
    _make("SAMSUNG", "SM-G900F", 211, 2_048_523, 847_591, 38_300),  # Galaxy S5
    _make("SONY", "D5803", 112, 1_097_018, 778_732, 31_500),  # Xperia Z3 Compact
    _make("LGE", "LG-D855", 87, 1_098_479, 669_446, 41_000),  # G3
    _make("ONEPLUS", "A0001", 84, 1_177_343, 657_992, 41_800),  # OnePlus One
    _make("LGE", "NEXUS 5", 129, 843_472, 530_597, 31_600),
    _make("SAMSUNG", "GT-I9300", 185, 1_432_594, 528_950, 28_500, fused=False),  # S3
    _make("SAMSUNG", "SM-G901F", 73, 1_113_082, 524_761, 38_900),  # S5 Plus
    _make("SONY", "D6603", 51, 815_239, 524_287, 42_400),  # Xperia Z3
    _make("SAMSUNG", "SM-N9005", 134, 1_448_701, 503_379, 43_700),  # Note 3
    _make("SAMSUNG", "GT-I9195", 174, 2_192_925, 464_916, 25_800, fused=False),  # S4 Mini
    _make("SAMSUNG", "SM-G800F", 66, 989_210, 393_045, 28_900),  # S5 Mini
    _make("HTC", "HTCONE_M8", 76, 854_593, 177_342, 35_300),
    _make("LGE", "NEXUS 4", 67, 702_895, 380_751, 28_500, fused=False),
    _make("SONY", "D6503", 52, 716_627, 200_360, 40_900),  # Xperia Z2
    _make("SAMSUNG", "SM-N910F", 116, 812_207, 344_337, 41_500),  # Note 4
    _make("SAMSUNG", "GT-I9305", 39, 692_420, 209_917, 28_500, fused=False),  # S3 LTE
    _make("LGE", "LG-D802", 46, 728_469, 278_089, 40_900),  # G2
    _make("SONY", "D2303", 40, 585_396, 221_686, 31_600),  # Xperia M2
    _make("SAMSUNG", "GT-P5210", 96, 1_412_188, 305_735, 88_900, fused=False),  # Tab 3
]

TOTAL_DEVICES = sum(m.devices for m in TOP20_MODELS)
TOTAL_MEASUREMENTS = sum(m.measurements for m in TOP20_MODELS)
TOTAL_LOCALIZED = sum(m.localized for m in TOP20_MODELS)

# The paper's Figure 9 totals; kept as assertions of fidelity.
assert TOTAL_DEVICES == 2_091, TOTAL_DEVICES
assert TOTAL_MEASUREMENTS == 23_108_136, TOTAL_MEASUREMENTS
assert TOTAL_LOCALIZED == 9_556_174, TOTAL_LOCALIZED
