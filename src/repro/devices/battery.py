"""Battery model with per-component energy accounting.

§5.3 measures battery depletion of SoundCity configurations over a
10 AM–5 PM day with 1-minute sensing: without the app, with unbuffered
uplink (send every cycle) and with buffered uplink (send every 10
cycles), over WiFi and 3G. The reported findings are *ratios*:

- unbuffered over WiFi doubles the depletion vs no app;
- 3G increases the depletion rate by 50 % vs WiFi;
- buffering brings the WiFi overhead under +50 %.

The model charges each action with a fixed energy cost. The defaults
below are calibrated so the ratios above emerge from first principles:
radio wake-up (connection setup + tail energy) dominates transmission
cost, so batching 10 observations into one wake-up saves most of the
radio energy — the actual payload bytes are nearly free.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigurationError


class NetworkKind(enum.Enum):
    """Transport used for an uplink transmission."""

    WIFI = "wifi"
    CELL_3G = "3g"


@dataclass(frozen=True)
class EnergyCosts:
    """Energy cost of each charged action, in joules.

    Defaults follow published smartphone power measurements in order of
    magnitude (mic sampling ~0.5 J per 1-s capture incl. CPU; GPS fix
    ~1.5 J; a 3G radio promotion plus tail ~12 J; WiFi wake ~4 J;
    payload cost per message is small). ``idle_power_w`` is the
    device's baseline draw with the screen off and OS duties only.
    """

    idle_power_w: float = 0.080
    mic_sample_j: float = 0.50
    gps_fix_j: float = 1.50
    network_fix_j: float = 0.25
    fused_fix_j: float = 0.60
    activity_sample_j: float = 0.10
    radio_wake_j: Dict[str, float] = field(
        default_factory=lambda: {"wifi": 4.0, "3g": 8.0}
    )
    per_message_j: Dict[str, float] = field(
        default_factory=lambda: {"wifi": 0.08, "3g": 0.25}
    )
    # v1.2.9's "optimized use of RabbitMQ" (one long-lived channel
    # instead of reconnecting per publish) removes this extra cost.
    legacy_session_overhead_j: float = 2.0


class Battery:
    """Tracks the charge of one device.

    Args:
        capacity_j: full-charge energy.
        level: initial state of charge in [0, 1] (the paper's protocol
            starts at 0.8 because "battery usage over the first 20 % is
            not linear" — we model the linear regime only).
        costs: the action cost table.
    """

    def __init__(
        self,
        capacity_j: float,
        level: float = 0.8,
        costs: EnergyCosts | None = None,
    ) -> None:
        if capacity_j <= 0:
            raise ConfigurationError(f"capacity must be > 0, got {capacity_j}")
        if not 0.0 <= level <= 1.0:
            raise ConfigurationError(f"level must be in [0, 1], got {level}")
        self.capacity_j = float(capacity_j)
        self.costs = costs or EnergyCosts()
        self._consumed_j = capacity_j * (1.0 - level)
        self._ledger: Dict[str, float] = {}

    # -- state ------------------------------------------------------------

    @property
    def level(self) -> float:
        """State of charge in [0, 1]."""
        return max(0.0, 1.0 - self._consumed_j / self.capacity_j)

    @property
    def depleted(self) -> bool:
        """Whether the battery is empty."""
        return self.level <= 0.0

    @property
    def consumed_j(self) -> float:
        """Total energy drawn since construction."""
        return self._consumed_j

    def ledger(self) -> Dict[str, float]:
        """Energy drawn per action kind (joules)."""
        return dict(self._ledger)

    # -- charging actions ---------------------------------------------------

    def _draw(self, kind: str, joules: float) -> None:
        if joules < 0:
            raise ConfigurationError(f"cannot draw negative energy {joules}")
        self._consumed_j += joules
        self._ledger[kind] = self._ledger.get(kind, 0.0) + joules

    def idle(self, seconds: float) -> None:
        """Baseline OS draw over ``seconds``."""
        self._draw("idle", self.costs.idle_power_w * seconds)

    def mic_sample(self) -> None:
        """One microphone capture + SPL computation."""
        self._draw("mic", self.costs.mic_sample_j)

    def location_fix(self, provider: str) -> None:
        """One location fix by ``provider`` ('gps'/'network'/'fused')."""
        cost = {
            "gps": self.costs.gps_fix_j,
            "network": self.costs.network_fix_j,
            "fused": self.costs.fused_fix_j,
        }.get(provider)
        if cost is None:
            raise ConfigurationError(f"unknown location provider {provider!r}")
        self._draw(f"loc:{provider}", cost)

    def activity_sample(self) -> None:
        """One activity-recognition sample."""
        self._draw("activity", self.costs.activity_sample_j)

    def transmit(
        self, message_count: int, network: NetworkKind, legacy_session: bool = False
    ) -> None:
        """One radio wake-up sending ``message_count`` messages.

        The wake-up cost is paid once per call — this is the buffering
        energy saving. ``legacy_session`` adds the v1.1 reconnect
        overhead that v1.2.9 removed.
        """
        if message_count <= 0:
            raise ConfigurationError(
                f"message_count must be > 0, got {message_count}"
            )
        key = network.value
        joules = self.costs.radio_wake_j[key]
        joules += self.costs.per_message_j[key] * message_count
        if legacy_session:
            joules += self.costs.legacy_session_overhead_j
        self._draw(f"radio:{key}", joules)
