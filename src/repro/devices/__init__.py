"""Device fleet: phone models, registry, and battery accounting.

The paper's evaluation is anchored on the 20 most popular phone models of
the SoundCity user base (Figure 9: 2,091 devices, 23,108,136
measurements, 9,556,174 localized). :data:`TOP20_MODELS` carries that
table verbatim as ground truth for the synthetic fleet; per-model
microphone responses encode the sensing heterogeneity of §5.2 and the
battery model the component costs behind §5.3.
"""

from repro.devices.models import (
    MicrophoneResponse,
    PhoneModel,
    TOP20_MODELS,
    TOTAL_DEVICES,
    TOTAL_LOCALIZED,
    TOTAL_MEASUREMENTS,
)
from repro.devices.registry import DeviceRegistry
from repro.devices.battery import Battery, EnergyCosts, NetworkKind

__all__ = [
    "Battery",
    "DeviceRegistry",
    "EnergyCosts",
    "MicrophoneResponse",
    "NetworkKind",
    "PhoneModel",
    "TOP20_MODELS",
    "TOTAL_DEVICES",
    "TOTAL_LOCALIZED",
    "TOTAL_MEASUREMENTS",
]
