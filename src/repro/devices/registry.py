"""Device registry: lookup and fleet sampling.

The registry answers two needs: (1) lookup of a model's properties by
name (calibration, analysis), and (2) drawing a *scaled* synthetic fleet
whose per-model composition matches Figure 9 — e.g. a 1/10-scale fleet
keeps each model's device share, so every downstream per-model statistic
retains the paper's weighting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.devices.models import PhoneModel, TOP20_MODELS


class DeviceRegistry:
    """Registry of known phone models."""

    def __init__(self, models: Optional[Sequence[PhoneModel]] = None) -> None:
        source = list(models) if models is not None else list(TOP20_MODELS)
        if not source:
            raise ConfigurationError("registry requires at least one model")
        self._models: Dict[str, PhoneModel] = {}
        for model in source:
            if model.name in self._models:
                raise ConfigurationError(f"duplicate model name {model.name!r}")
            self._models[model.name] = model
        self._order = [m.name for m in source]

    # -- lookup --------------------------------------------------------------

    def get(self, name: str) -> PhoneModel:
        """The model named ``name``; raises on unknown models."""
        model = self._models.get(name)
        if model is None:
            raise ConfigurationError(f"unknown phone model {name!r}")
        return model

    def __contains__(self, name: str) -> bool:
        return name in self._models

    def __len__(self) -> int:
        return len(self._models)

    def names(self) -> List[str]:
        """Model names in registry order (Figure 9 order by default)."""
        return list(self._order)

    def models(self) -> List[PhoneModel]:
        """All models in registry order."""
        return [self._models[n] for n in self._order]

    # -- fleet composition -------------------------------------------------------

    def device_shares(self) -> Dict[str, float]:
        """Model -> fraction of the fleet's devices (Figure 9 weights)."""
        total = sum(m.devices for m in self._models.values())
        return {n: self._models[n].devices / total for n in self._order}

    def measurement_shares(self) -> Dict[str, float]:
        """Model -> fraction of the fleet's measurements."""
        total = sum(m.measurements for m in self._models.values())
        return {n: self._models[n].measurements / total for n in self._order}

    def scaled_fleet(self, scale: float) -> Dict[str, int]:
        """Per-model device counts for a fleet scaled by ``scale``.

        Largest-remainder rounding keeps the total at
        ``round(scale * total_devices)`` while every model keeps at least
        one device (the analysis needs every model present).
        """
        if scale <= 0:
            raise ConfigurationError(f"scale must be > 0, got {scale}")
        exact = {n: self._models[n].devices * scale for n in self._order}
        floors = {n: max(1, int(v)) for n, v in exact.items()}
        target = max(len(self._order), round(sum(self._models[n].devices for n in self._order) * scale))
        remainder_order = sorted(
            self._order, key=lambda n: exact[n] - int(exact[n]), reverse=True
        )
        result = dict(floors)
        deficit = target - sum(result.values())
        for name in remainder_order:
            if deficit <= 0:
                break
            result[name] += 1
            deficit -= 1
        return result

    def sample_model(self, rng: np.random.Generator) -> PhoneModel:
        """Draw one model with probability proportional to device count."""
        shares = self.device_shares()
        names = list(shares)
        probabilities = np.array([shares[n] for n in names])
        return self._models[names[rng.choice(len(names), p=probabilities)]]
