"""Differentially private aggregate publication.

§2 (Sensing): "privacy guarantees should be offered to participants,
which may in particular be handled at the time of data collection and
aggregation [9, 43, 17, 29]". The GoFlow open-data path already
pseudonymizes and coarsens; this module adds the formal layer for
*published aggregates*: epsilon-differential privacy via the Laplace
mechanism, with an explicit per-release privacy budget.

Supported releases over the observations collection:

- **zone counts** — how many observations per zone (sensitivity 1 per
  contributed observation);
- **zone mean levels** — average dB(A) per zone, computed with the
  standard clamped-sum / noisy-count construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.datamgmt import OBSERVATIONS
from repro.core.errors import ValidationError
from repro.docstore.store import DocumentStore


class PrivacyBudget:
    """Tracks cumulative epsilon spent across releases.

    Sequential composition: total privacy loss is the sum of the
    epsilons of all releases computed from the same data. The budget
    refuses releases that would exceed it.
    """

    def __init__(self, total_epsilon: float) -> None:
        if total_epsilon <= 0:
            raise ValidationError("total epsilon must be > 0")
        self.total_epsilon = total_epsilon
        self._spent = 0.0

    @property
    def spent(self) -> float:
        """Epsilon consumed so far."""
        return self._spent

    @property
    def remaining(self) -> float:
        """Epsilon still available."""
        return self.total_epsilon - self._spent

    def charge(self, epsilon: float) -> None:
        """Consume ``epsilon``; raises when the budget would overdraw."""
        if epsilon <= 0:
            raise ValidationError("epsilon must be > 0")
        if self._spent + epsilon > self.total_epsilon + 1e-12:
            raise ValidationError(
                f"privacy budget exhausted: spent {self._spent:.3f} + "
                f"{epsilon:.3f} > {self.total_epsilon:.3f}"
            )
        self._spent += epsilon


def laplace_noise(rng: np.random.Generator, scale: float) -> float:
    """One draw of Laplace(0, scale) noise."""
    if scale <= 0:
        raise ValidationError("laplace scale must be > 0")
    return float(rng.laplace(0.0, scale))


@dataclass(frozen=True)
class DpRelease:
    """One published aggregate with its privacy accounting."""

    values: Dict[str, float]
    epsilon: float
    mechanism: str


class DpAggregator:
    """Publishes DP aggregates from the observation store."""

    def __init__(
        self,
        store: DocumentStore,
        budget: PrivacyBudget,
        rng: Optional[np.random.Generator] = None,
        zone_m: float = 1000.0,
        level_bounds_db: Tuple[float, float] = (20.0, 100.0),
    ) -> None:
        if zone_m <= 0:
            raise ValidationError("zone size must be > 0")
        low, high = level_bounds_db
        if high <= low:
            raise ValidationError("level bounds must satisfy low < high")
        self._observations = store.collection(OBSERVATIONS)
        self.budget = budget
        self._rng = rng or np.random.default_rng()
        self.zone_m = zone_m
        self.level_bounds_db = level_bounds_db

    # -- helpers ------------------------------------------------------------

    def _zone_of(self, document: Dict[str, Any]) -> Optional[str]:
        location = document.get("location")
        if not isinstance(location, dict):
            return None
        return (
            f"Z{int(location['x_m'] // self.zone_m)}-"
            f"{int(location['y_m'] // self.zone_m)}"
        )

    def _grouped(self) -> Dict[str, list]:
        groups: Dict[str, list] = {}
        for document in self._observations.find({"location": {"$exists": True}}):
            zone = self._zone_of(document)
            if zone is not None:
                groups.setdefault(zone, []).append(document["noise_dba"])
        return groups

    # -- releases -------------------------------------------------------------------

    def zone_counts(self, epsilon: float) -> DpRelease:
        """Noisy per-zone observation counts (sensitivity 1)."""
        self.budget.charge(epsilon)
        groups = self._grouped()
        noisy = {
            zone: max(0.0, len(levels) + laplace_noise(self._rng, 1.0 / epsilon))
            for zone, levels in groups.items()
        }
        return DpRelease(values=noisy, epsilon=epsilon, mechanism="laplace-count")

    def zone_mean_levels(self, epsilon: float) -> DpRelease:
        """Noisy per-zone mean dB(A).

        Standard construction: split epsilon between a clamped noisy sum
        (sensitivity = bound width) and a noisy count (sensitivity 1),
        then divide. Zones whose noisy count is < 1 are suppressed.
        """
        self.budget.charge(epsilon)
        half = epsilon / 2.0
        low, high = self.level_bounds_db
        width = high - low
        groups = self._grouped()
        released: Dict[str, float] = {}
        for zone, levels in groups.items():
            clamped = [min(max(level, low), high) for level in levels]
            noisy_sum = sum(clamped) + laplace_noise(self._rng, width / half)
            noisy_count = len(clamped) + laplace_noise(self._rng, 1.0 / half)
            if noisy_count < 1.0:
                continue  # too few people to publish safely
            mean = noisy_sum / noisy_count
            released[zone] = float(min(max(mean, low), high))
        return DpRelease(values=released, epsilon=epsilon, mechanism="laplace-mean")
