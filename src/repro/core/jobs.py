"""Background jobs.

Figure 2: "Background jobs manages scripts which are submitted by the
application's managers and perform various operations on the
crowd-sensed data stored on behalf of the application."

Jobs are named, registered callables (the "script library") that
managers submit with parameters; the job runner executes them against
the store, records status transitions and results, and keeps a journal
in the ``jobs`` collection.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.core.errors import NotFoundError, ValidationError
from repro.docstore.store import DocumentStore

JobFunction = Callable[[DocumentStore, Dict[str, Any]], Any]


class JobStatus(enum.Enum):
    """Lifecycle of a background job."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass
class BackgroundJob:
    """A submitted job instance."""

    job_id: int
    app_id: str
    script: str
    params: Dict[str, Any]
    status: JobStatus
    submitted_by: str
    result: Any = None
    error: Optional[str] = None


class JobManager:
    """Registers scripts, accepts submissions, and runs jobs."""

    def __init__(self, store: DocumentStore, clock: Callable[[], float]) -> None:
        self._store = store
        self._clock = clock
        self._journal = store.collection("jobs")
        self._scripts: Dict[str, JobFunction] = {}
        self._jobs: Dict[int, BackgroundJob] = {}
        self._ids = itertools.count(1)

    # -- script library ------------------------------------------------------

    def register_script(self, name: str, function: JobFunction) -> None:
        """Make ``function`` available for submission under ``name``."""
        if not name:
            raise ValidationError("script name must be non-empty")
        if name in self._scripts:
            raise ValidationError(f"script {name!r} already registered")
        self._scripts[name] = function

    def script_names(self) -> List[str]:
        """Registered script names."""
        return sorted(self._scripts)

    # -- submission & execution ----------------------------------------------------

    def submit(
        self,
        app_id: str,
        script: str,
        params: Optional[Dict[str, Any]] = None,
        submitted_by: str = "",
    ) -> BackgroundJob:
        """Queue a job; returns it in PENDING state."""
        if script not in self._scripts:
            raise NotFoundError(f"unknown script {script!r}")
        job = BackgroundJob(
            job_id=next(self._ids),
            app_id=app_id,
            script=script,
            params=dict(params or {}),
            status=JobStatus.PENDING,
            submitted_by=submitted_by,
        )
        self._jobs[job.job_id] = job
        self._journal.insert_one(
            {
                "job_id": job.job_id,
                "app_id": app_id,
                "script": script,
                "status": job.status.value,
                "submitted_at": self._clock(),
                "submitted_by": submitted_by,
            }
        )
        return job

    def cancel(self, job_id: int) -> None:
        """Cancel a pending job."""
        job = self.get(job_id)
        if job.status is not JobStatus.PENDING:
            raise ValidationError(
                f"job {job_id} is {job.status.value}, only pending jobs cancel"
            )
        job.status = JobStatus.CANCELLED
        self._set_status(job_id, JobStatus.CANCELLED)

    def run(self, job_id: int) -> BackgroundJob:
        """Execute one pending job synchronously."""
        job = self.get(job_id)
        if job.status is not JobStatus.PENDING:
            raise ValidationError(
                f"job {job_id} is {job.status.value}, expected pending"
            )
        job.status = JobStatus.RUNNING
        self._set_status(job_id, JobStatus.RUNNING)
        try:
            job.result = self._scripts[job.script](self._store, job.params)
        except Exception as exc:  # noqa: BLE001 - jobs are user scripts
            job.status = JobStatus.FAILED
            job.error = f"{type(exc).__name__}: {exc}"
            self._set_status(job_id, JobStatus.FAILED, error=job.error)
        else:
            job.status = JobStatus.DONE
            self._set_status(job_id, JobStatus.DONE)
        return job

    def run_pending(self) -> List[BackgroundJob]:
        """Execute every pending job in submission order."""
        pending = [j for j in self._jobs.values() if j.status is JobStatus.PENDING]
        return [self.run(job.job_id) for job in sorted(pending, key=lambda j: j.job_id)]

    # -- inspection -----------------------------------------------------------------

    def get(self, job_id: int) -> BackgroundJob:
        """Look up a job by id."""
        job = self._jobs.get(job_id)
        if job is None:
            raise NotFoundError(f"unknown job {job_id}")
        return job

    def jobs_for_app(self, app_id: str) -> List[BackgroundJob]:
        """All jobs submitted for ``app_id``."""
        return [j for j in self._jobs.values() if j.app_id == app_id]

    def _set_status(
        self, job_id: int, status: JobStatus, error: Optional[str] = None
    ) -> None:
        update: Dict[str, Any] = {"status": status.value, "updated_at": self._clock()}
        if error is not None:
            update["error"] = error
        self._journal.update_one({"job_id": job_id}, {"$set": update})
