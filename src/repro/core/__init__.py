"""GoFlow: the crowd-sensing middleware (the paper's core system).

Figure 2's components, one module each:

- :mod:`repro.core.api` — the REST-based GoFlow API (routing,
  authentication, request/response model);
- :mod:`repro.core.accounts` — account and access management (apps,
  users, roles, credentials);
- :mod:`repro.core.auth` — token issuance and validation;
- :mod:`repro.core.channels` — channel management: creates and wires
  the RabbitMQ exchanges/queues of Figure 3 on behalf of clients;
- :mod:`repro.core.datamgmt` — crowd-sensed data management: filtered
  retrieval and packaging (json stream, file);
- :mod:`repro.core.jobs` — background jobs over the stored data;
- :mod:`repro.core.analytics` — crowd-sensing analytics;
- :mod:`repro.core.privacy` — the CNIL privacy policy: pseudonymization,
  private-field stripping, open-data location coarsening;
- :mod:`repro.core.server` — the composition root tying everything to
  the broker and the document store.
"""

from repro.core.errors import (
    AuthenticationError,
    AuthorizationError,
    GoFlowError,
    NotFoundError,
    ValidationError,
)
from repro.core.privacy import PrivacyPolicy
from repro.core.accounts import Account, AccountManager, Role
from repro.core.auth import TokenService
from repro.core.channels import ChannelManager, ClientChannels
from repro.core.datamgmt import DataManager, DataQuery
from repro.core.jobs import BackgroundJob, JobManager, JobStatus
from repro.core.analytics import AnalyticsEngine
from repro.core.api import GoFlowAPI, Request, Response
from repro.core.retention import RetentionEnforcer, RetentionPolicy
from repro.core.server import GoFlowServer

__all__ = [
    "Account",
    "AccountManager",
    "AnalyticsEngine",
    "AuthenticationError",
    "AuthorizationError",
    "BackgroundJob",
    "ChannelManager",
    "ClientChannels",
    "DataManager",
    "DataQuery",
    "GoFlowAPI",
    "GoFlowError",
    "GoFlowServer",
    "JobManager",
    "JobStatus",
    "NotFoundError",
    "PrivacyPolicy",
    "Request",
    "Response",
    "RetentionEnforcer",
    "RetentionPolicy",
    "Role",
    "TokenService",
    "ValidationError",
]
