"""Crowd-sensing analytics.

Figure 2: "generates statistics about the app/clients operations".
Every statistic here is computed with the document store's aggregation
pipeline over the observations collection — the same queries the paper's
own analysis must have run over MongoDB — and these are exactly the
aggregates the Figure benches consume.

The four highest-traffic statistics (totals, the Figure 9 per-model
table, the Figure 8 cumulative curve, the Figure 20 provider shares)
are additionally served from :class:`~repro.core.materialized.
MaterializedAnalytics` counters when a view is attached and fresh; a
view that is degraded (or a query variant the counters do not cover)
falls back to the full pipeline, whose ``_*_pipeline`` forms are kept
as both the fallback and the oracle the integration tests compare
against.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.datamgmt import OBSERVATIONS
from repro.core.materialized import MaterializedAnalytics
from repro.docstore.store import DocumentStore


class AnalyticsEngine:
    """Aggregate statistics over stored observations.

    Args:
        store: the backing document store.
        materialized: an externally maintained counter view to serve
            the hot statistics from (the server shares the one its
            ``DataManager`` feeds at ingest). When None, the engine
            builds its own — kept exact by rebuild-on-write-detection
            rather than by ingest notifications.
        observations: an override for the observations collection —
            any object with ``count``/``aggregate``. A sharded server
            passes its scatter-gather collection facade here so every
            statistic spans the whole fleet.
    """

    def __init__(
        self,
        store: DocumentStore,
        materialized: Optional[MaterializedAnalytics] = None,
        observations: Optional[Any] = None,
    ) -> None:
        self._observations = (
            observations if observations is not None else store.collection(OBSERVATIONS)
        )
        self._materialized = (
            materialized
            if materialized is not None
            else MaterializedAnalytics(self._observations)
        )

    # -- volume -----------------------------------------------------------------

    def totals(self) -> Dict[str, int]:
        """Total and localized observation counts."""
        counts = self._materialized.totals()
        if counts is not None:
            return counts
        return self._totals_pipeline()

    def _totals_pipeline(self) -> Dict[str, int]:
        total = self._observations.count()
        localized = self._observations.count({"location": {"$exists": True}})
        return {"total": total, "localized": localized}

    def per_model_table(self) -> List[Dict[str, Any]]:
        """The Figure 9 table: devices / measurements / localized per model."""
        groups = self._materialized.per_model_groups()
        if groups is None:
            return self._per_model_table_pipeline()
        # same order as the pipeline: groups in first-seen order, then a
        # stable descending sort on the localized count
        groups.sort(key=lambda row: row["localized"], reverse=True)
        return [
            {
                "model": row["_id"],
                "devices": row["devices"],
                "measurements": row["measurements"],
                "localized": row["localized"],
            }
            for row in groups
        ]

    def _per_model_table_pipeline(self) -> List[Dict[str, Any]]:
        rows = self._observations.aggregate(
            [
                {
                    "$group": {
                        "_id": "$model",
                        "measurements": {"$sum": 1},
                        "contributors": {"$addToSet": "$contributor"},
                        "localized": {
                            "$sum": {
                                "$cond": [
                                    {"$ifNull": ["$location", False]},
                                    1,
                                    0,
                                ]
                            }
                        },
                    }
                },
                {"$sort": {"localized": -1}},
            ]
        )
        return [
            {
                "model": row["_id"],
                "devices": len(row["contributors"]),
                "measurements": row["measurements"],
                "localized": row["localized"],
            }
            for row in rows
        ]

    def cumulative_by_day(self) -> List[Dict[str, Any]]:
        """Per-day and cumulative observation counts (Figure 8)."""
        rows = self._materialized.day_counts()
        if rows is None:
            rows = self._cumulative_rows_pipeline()
        cumulative = 0
        out = []
        for row in rows:
            cumulative += row["count"]
            out.append(
                {"day": row["_id"], "count": row["count"], "cumulative": cumulative}
            )
        return out

    def _cumulative_rows_pipeline(self) -> List[Dict[str, Any]]:
        return self._observations.aggregate(
            [
                {
                    "$addFields": {
                        "day": {"$floor": {"$divide": ["$taken_at", 86400]}}
                    }
                },
                {"$group": {"_id": "$day", "count": {"$sum": 1}}},
                {"$sort": {"_id": 1}},
            ]
        )

    def _cumulative_by_day_pipeline(self) -> List[Dict[str, Any]]:
        cumulative = 0
        out = []
        for row in self._cumulative_rows_pipeline():
            cumulative += row["count"]
            out.append(
                {"day": row["_id"], "count": row["count"], "cumulative": cumulative}
            )
        return out

    # -- location ------------------------------------------------------------------

    def provider_shares(self, mode: Optional[str] = None) -> Dict[str, float]:
        """Share of each provider among localized observations.

        ``mode`` restricts to one sensing mode (Figure 20's three bars).
        """
        if mode is None:
            rows = self._materialized.provider_counts()
            if rows is not None:
                total = sum(row["count"] for row in rows)
                if total == 0:
                    return {}
                return {row["_id"]: row["count"] / total for row in rows}
        return self._provider_shares_pipeline(mode)

    def _provider_shares_pipeline(
        self, mode: Optional[str] = None
    ) -> Dict[str, float]:
        match: Dict[str, Any] = {"location": {"$exists": True}}
        if mode is not None:
            match["mode"] = mode
        rows = self._observations.aggregate(
            [
                {"$match": match},
                {"$group": {"_id": "$location.provider", "count": {"$sum": 1}}},
            ]
        )
        total = sum(row["count"] for row in rows)
        if total == 0:
            return {}
        return {row["_id"]: row["count"] / total for row in rows}

    def accuracy_values(self, provider: Optional[str] = None) -> List[float]:
        """Reported accuracies of localized observations (Figs. 10-13)."""
        match: Dict[str, Any] = {"location": {"$exists": True}}
        if provider is not None:
            match["location.provider"] = provider
        rows = self._observations.aggregate(
            [
                {"$match": match},
                {"$project": {"accuracy": "$location.accuracy_m", "_id": 0}},
            ]
        )
        return [row["accuracy"] for row in rows]

    def accuracy_buckets(
        self, provider: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """Figure 10-13 histograms as one ``$bucket`` pipeline.

        Returns rows ``{_id: lower bound (or 'coarse'), count, mean}``
        over the paper's accuracy intervals.
        """
        match: Dict[str, Any] = {"location": {"$exists": True}}
        if provider is not None:
            match["location.provider"] = provider
        return self._observations.aggregate(
            [
                {"$match": match},
                {
                    "$bucket": {
                        "groupBy": "$location.accuracy_m",
                        "boundaries": [0, 6, 20, 50, 100, 200, 500],
                        "default": "coarse",
                        "output": {
                            "count": {"$sum": 1},
                            "mean": {"$avg": "$location.accuracy_m"},
                        },
                    }
                },
            ]
        )

    # -- noise ---------------------------------------------------------------------------

    def spl_values(
        self, model: Optional[str] = None, contributor: Optional[str] = None
    ) -> List[float]:
        """Reported dB(A) values, optionally per model / contributor."""
        match: Dict[str, Any] = {}
        if model is not None:
            match["model"] = model
        if contributor is not None:
            match["contributor"] = contributor
        pipeline: List[Dict[str, Any]] = []
        if match:
            pipeline.append({"$match": match})
        pipeline.append({"$project": {"dba": "$noise_dba", "_id": 0}})
        return [row["dba"] for row in self._observations.aggregate(pipeline)]

    def top_contributors(self, model: str, limit: int = 20) -> List[str]:
        """The most active contributor pseudonyms for a model (Fig. 15)."""
        rows = self._observations.aggregate(
            [
                {"$match": {"model": model}},
                {"$group": {"_id": "$contributor", "count": {"$sum": 1}}},
                {"$sort": {"count": -1}},
                {"$limit": limit},
            ]
        )
        return [row["_id"] for row in rows]

    # -- participation ---------------------------------------------------------------------

    def hourly_distribution(self, model: Optional[str] = None) -> List[float]:
        """Share of measurements per hour of day (Figures 18-19)."""
        pipeline: List[Dict[str, Any]] = []
        if model is not None:
            pipeline.append({"$match": {"model": model}})
        pipeline += [
            {
                "$addFields": {
                    "hour": {
                        "$floor": {
                            "$divide": [{"$mod": ["$taken_at", 86400]}, 3600]
                        }
                    }
                }
            },
            {"$group": {"_id": "$hour", "count": {"$sum": 1}}},
            {"$sort": {"_id": 1}},
        ]
        rows = self._observations.aggregate(pipeline)
        counts = {int(row["_id"]): row["count"] for row in rows}
        total = sum(counts.values())
        if total == 0:
            return [0.0] * 24
        return [counts.get(hour, 0) / total for hour in range(24)]

    def hourly_distribution_by_contributor(self, model: str) -> Dict[str, List[float]]:
        """Per-contributor hourly shares for one model (Figure 19)."""
        rows = self._observations.aggregate(
            [
                {"$match": {"model": model}},
                {
                    "$addFields": {
                        "hour": {
                            "$floor": {
                                "$divide": [{"$mod": ["$taken_at", 86400]}, 3600]
                            }
                        }
                    }
                },
                {
                    "$group": {
                        "_id": {"contributor": "$contributor", "hour": "$hour"},
                        "count": {"$sum": 1},
                    }
                },
            ]
        )
        per_user: Dict[str, Dict[int, int]] = {}
        for row in rows:
            contributor = row["_id"]["contributor"]
            hour = int(row["_id"]["hour"])
            per_user.setdefault(contributor, {})[hour] = row["count"]
        out: Dict[str, List[float]] = {}
        for contributor, counts in per_user.items():
            total = sum(counts.values())
            out[contributor] = [counts.get(h, 0) / total for h in range(24)]
        return out

    # -- activities ------------------------------------------------------------------------

    def activity_distribution(self) -> Dict[str, float]:
        """Share of each activity label (Figure 21)."""
        rows = self._observations.aggregate(
            [{"$group": {"_id": "$activity.label", "count": {"$sum": 1}}}]
        )
        total = sum(row["count"] for row in rows)
        if total == 0:
            return {}
        return {row["_id"]: row["count"] / total for row in rows}

    # -- delays ------------------------------------------------------------------------------

    def transmission_delays(
        self, app_version: Optional[str] = None
    ) -> List[float]:
        """received_at - taken_at for every stored observation (Fig. 17)."""
        pipeline: List[Dict[str, Any]] = []
        if app_version is not None:
            pipeline.append({"$match": {"app_version": app_version}})
        pipeline.append(
            {
                "$project": {
                    "_id": 0,
                    "delay": {"$subtract": ["$received_at", "$taken_at"]},
                }
            }
        )
        return [row["delay"] for row in self._observations.aggregate(pipeline)]
