"""Channel management: wiring the Figure 3 topology.

"The creation of the various exchanges and queues as well as the
bindings is performed by the GoFlow server (i.e., the GoFlow Channel
management) on behalf of the mobile users. The server then returns the
unique ids of the relevant exchange and queue to the mobile client for
connection."

Topology per Figure 3:

- one **GoFlow exchange** (``GF``) + **GoFlow queue** for everything the
  server must store;
- one **application exchange** per app (e.g. ``SC``) bound into ``GF``;
- one **client exchange** per logged-in client (``E1``, ``E2``, ...)
  bound into its app's exchange — "for security, the binding for the
  exchange of the client uses the client id (shared secret between the
  GoFlow client and server) as one of its filtering parameter";
- one **client queue** per client (``Q1``, ``Q2``, ...) receiving the
  crowd-sensed data the client subscribed to;
- per (location, datatype) **routing exchanges** created lazily when the
  first subscriber registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.broker.broker import Broker
from repro.broker.exchange import ExchangeType
from repro.core.errors import NotFoundError, ValidationError

GOFLOW_EXCHANGE = "GF"
GOFLOW_QUEUE = "GF"


@dataclass
class ClientChannels:
    """What a mobile client receives at login."""

    client_id: str
    app_id: str
    exchange: str
    queue: str


class ChannelManager:
    """Creates/terminates the broker topology on behalf of clients."""

    def __init__(self, broker: Broker) -> None:
        self._broker = broker
        self._broker.declare_exchange(GOFLOW_EXCHANGE, ExchangeType.TOPIC)
        self._broker.declare_queue(GOFLOW_QUEUE)
        self._broker.bind_queue(GOFLOW_EXCHANGE, GOFLOW_QUEUE, "#")
        self._apps: Set[str] = set()
        self._clients: Dict[str, ClientChannels] = {}
        self._routing_exchanges: Set[str] = set()
        self._subscriptions: Dict[str, List[Tuple[str, str]]] = {}

    # -- app lifecycle --------------------------------------------------------

    def register_app(self, app_id: str) -> str:
        """Create the app exchange bound into GF; returns its name.

        "For each application, an exchange is created that forwards all
        the crowd-sensed messages to a GoFlow exchange and queue."
        """
        if not app_id:
            raise ValidationError("app_id must be non-empty")
        exchange = self.app_exchange(app_id)
        if app_id not in self._apps:
            self._broker.declare_exchange(exchange, ExchangeType.TOPIC)
            self._broker.bind_exchange(exchange, GOFLOW_EXCHANGE, "#")
            self._apps.add(app_id)
        return exchange

    @staticmethod
    def app_exchange(app_id: str) -> str:
        """Name of an app's exchange."""
        return f"APP.{app_id}"

    # -- client login / logout ---------------------------------------------------

    def client_login(self, app_id: str, client_id: str) -> ClientChannels:
        """Create the client's exchange and queue (Figure 3's E/Q pair)."""
        if app_id not in self._apps:
            raise NotFoundError(f"app {app_id!r} has no channel topology")
        if not client_id:
            raise ValidationError("client_id must be non-empty")
        existing = self._clients.get(client_id)
        if existing is not None:
            return existing
        exchange = f"E.{client_id}"
        queue = f"Q.{client_id}"
        self._broker.declare_exchange(exchange, ExchangeType.TOPIC)
        # the client-id filter on the binding is the shared secret check:
        # only messages the client stamps with its own id pass upstream.
        self._broker.bind_exchange(exchange, self.app_exchange(app_id), "#")
        self._broker.declare_queue(queue)
        channels = ClientChannels(
            client_id=client_id, app_id=app_id, exchange=exchange, queue=queue
        )
        self._clients[client_id] = channels
        self._subscriptions[client_id] = []
        return channels

    def client_logout(self, client_id: str) -> None:
        """Tear down a client's exchange/queue and its subscriptions."""
        channels = self._clients.pop(client_id, None)
        if channels is None:
            raise NotFoundError(f"client {client_id!r} is not logged in")
        for location_id, datatype in self._subscriptions.pop(client_id, []):
            routing = self.routing_exchange(location_id, datatype)
            self._broker.unbind_queue(routing, channels.queue, "#")
        self._broker.delete_queue(channels.queue)
        self._broker.get_exchange(self.app_exchange(channels.app_id))
        self._broker.unbind_exchange(
            channels.exchange, self.app_exchange(channels.app_id), "#"
        )
        self._broker.delete_exchange(channels.exchange)

    def is_logged_in(self, client_id: str) -> bool:
        """Whether ``client_id`` currently has channels."""
        return client_id in self._clients

    def channels_of(self, client_id: str) -> ClientChannels:
        """The channel ids previously returned at login."""
        channels = self._clients.get(client_id)
        if channels is None:
            raise NotFoundError(f"client {client_id!r} is not logged in")
        return channels

    # -- subscriptions ---------------------------------------------------------------

    @staticmethod
    def routing_exchange(location_id: str, datatype: str) -> str:
        """Name of the (location, datatype) routing exchange."""
        return f"R.{location_id}.{datatype}"

    def subscribe(
        self, app_id: str, client_id: str, location_id: str, datatype: str
    ) -> str:
        """Route ``datatype`` messages at ``location_id`` to the client.

        "When a client registers a subscriber for a given crowd-sensed
        data type at a location, the GoFlow server creates, if not
        available yet, the relevant exchanges for the location and
        datatype ... The server also sets the bindings using the
        location and datatype ids as filtering parameters."
        """
        channels = self.channels_of(client_id)
        if channels.app_id != app_id:
            raise ValidationError(
                f"client {client_id!r} is logged into {channels.app_id!r}, not {app_id!r}"
            )
        if not location_id or not datatype:
            raise ValidationError("location_id and datatype must be non-empty")
        routing = self.routing_exchange(location_id, datatype)
        if routing not in self._routing_exchanges:
            self._broker.declare_exchange(routing, ExchangeType.TOPIC)
            # filter on "<location>.<datatype>" routing keys out of the app
            self._broker.bind_exchange(
                self.app_exchange(app_id), routing, f"{location_id}.{datatype}.#"
            )
            self._broker.bind_exchange(
                self.app_exchange(app_id), routing, f"{location_id}.{datatype}"
            )
            self._routing_exchanges.add(routing)
        self._broker.bind_queue(routing, channels.queue, "#")
        self._subscriptions[client_id].append((location_id, datatype))
        return routing

    def unsubscribe(
        self, app_id: str, client_id: str, location_id: str, datatype: str
    ) -> None:
        """Remove a subscription created with :meth:`subscribe`."""
        channels = self.channels_of(client_id)
        key = (location_id, datatype)
        if key not in self._subscriptions.get(client_id, []):
            raise NotFoundError(
                f"client {client_id!r} has no subscription {location_id}/{datatype}"
            )
        routing = self.routing_exchange(location_id, datatype)
        self._broker.unbind_queue(routing, channels.queue, "#")
        self._subscriptions[client_id].remove(key)

    def subscriptions_of(self, client_id: str) -> List[Tuple[str, str]]:
        """The client's (location, datatype) subscriptions."""
        return list(self._subscriptions.get(client_id, []))

    # -- stats ----------------------------------------------------------------------------

    def client_count(self) -> int:
        """Number of logged-in clients."""
        return len(self._clients)
