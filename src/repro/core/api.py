"""The REST-based GoFlow API.

"REST-based GoFlow API is for clients and administrators to:
authenticate and register subscribers and publishers, retrieve
crowd-sensed data based on various filtering parameters, manage user
accounts for an app, and submit and manage background jobs."

The transport is in-process: a :class:`Request` goes through the router
to a handler and yields a :class:`Response` with an HTTP-like status
code. Path templates use ``{param}`` segments. Authentication is a
bearer token resolved by the token service; per-route minimum roles are
enforced before the handler runs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.accounts import Role
from repro.core.auth import Principal, TokenService
from repro.core.errors import (
    AuthenticationError,
    AuthorizationError,
    GoFlowError,
    NotFoundError,
    ValidationError,
)
from repro.errors import ReproError


@dataclass
class Request:
    """An API request."""

    method: str
    path: str
    params: Dict[str, str] = field(default_factory=dict)
    body: Any = None
    token: Optional[str] = None


@dataclass
class Response:
    """An API response."""

    status: int
    body: Any = None

    @property
    def ok(self) -> bool:
        """Whether the status is 2xx."""
        return 200 <= self.status < 300


Handler = Callable[[Request, Dict[str, str], Optional[Principal]], Any]


@dataclass
class _Route:
    method: str
    pattern: re.Pattern
    template: str
    handler: Handler
    min_role: Optional[Role]


def _compile_template(template: str) -> re.Pattern:
    if not template.startswith("/"):
        raise ValidationError(f"route template must start with '/': {template!r}")
    parts = []
    for segment in template.strip("/").split("/"):
        if segment.startswith("{") and segment.endswith("}"):
            name = segment[1:-1]
            if not name.isidentifier():
                raise ValidationError(f"bad path parameter {segment!r}")
            parts.append(f"(?P<{name}>[^/]+)")
        else:
            parts.append(re.escape(segment))
    return re.compile("^/" + "/".join(parts) + "$")


class GoFlowAPI:
    """Router + auth middleware for the GoFlow REST surface."""

    def __init__(self, tokens: TokenService) -> None:
        self._tokens = tokens
        self._routes: List[_Route] = []

    def route(
        self,
        method: str,
        template: str,
        handler: Handler,
        min_role: Optional[Role] = None,
    ) -> None:
        """Register ``handler`` for ``method template``.

        ``min_role=None`` makes the route public (login itself must be).
        """
        method = method.upper()
        if method not in ("GET", "POST", "PUT", "DELETE"):
            raise ValidationError(f"unsupported method {method!r}")
        self._routes.append(
            _Route(
                method=method,
                pattern=_compile_template(template),
                template=template,
                handler=handler,
                min_role=min_role,
            )
        )

    def dispatch(self, request: Request) -> Response:
        """Route a request; maps middleware errors to status codes."""
        matched_path = False
        for route in self._routes:
            match = route.pattern.match(request.path)
            if match is None:
                continue
            matched_path = True
            if route.method != request.method.upper():
                continue
            principal: Optional[Principal] = None
            try:
                if route.min_role is not None:
                    principal = self._tokens.validate(request.token)
                    if not principal.role.at_least(route.min_role):
                        raise AuthorizationError(
                            f"{principal.user_id!r} lacks role "
                            f"{route.min_role.value!r}"
                        )
                result = route.handler(request, match.groupdict(), principal)
            except AuthenticationError as exc:
                return Response(status=401, body={"error": str(exc)})
            except AuthorizationError as exc:
                return Response(status=403, body={"error": str(exc)})
            except NotFoundError as exc:
                return Response(status=404, body={"error": str(exc)})
            except ValidationError as exc:
                return Response(status=400, body={"error": str(exc)})
            except GoFlowError as exc:
                return Response(status=500, body={"error": str(exc)})
            except ReproError as exc:
                # lower-layer failures (docstore, broker) must surface as
                # a server error, not escape the transport: batch-uplink
                # clients rely on a non-2xx response to retransmit.
                return Response(status=500, body={"error": str(exc)})
            if isinstance(result, Response):
                return result
            return Response(status=200, body=result)
        if matched_path:
            return Response(status=405, body={"error": "method not allowed"})
        return Response(status=404, body={"error": f"no route for {request.path!r}"})

    def routes(self) -> List[Tuple[str, str]]:
        """(method, template) of every registered route."""
        return [(r.method, r.template) for r in self._routes]
