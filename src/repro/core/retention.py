"""Data-retention enforcement (the CNIL obligations, §3.1).

French data-protection rules (enforced by the CNIL the paper cites)
require that personal data is kept no longer than necessary for its
purpose. For a crowd-sensing store this means:

- **age-based expiry** of raw observations (old raw traces are
  deleted or reduced to anonymous aggregates);
- **inactive-account cleanup**: contributors who left the study have
  their remaining data erased after a grace period;
- everything runs as a registered **background job** (Figure 2's jobs
  component), so the enforcement itself is auditable in the jobs
  journal.

Before raw documents are deleted they can be folded into per-(zone,
day) aggregates — counts and energy-mean levels carry the scientific
value with no personal dimension left.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.core.datamgmt import OBSERVATIONS
from repro.core.errors import ValidationError
from repro.core.jobs import JobManager
from repro.docstore.store import DocumentStore
from repro.noise.spl import leq

SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True)
class RetentionPolicy:
    """How long raw personal data may live.

    Attributes:
        raw_retention_days: raw observations older than this are
            aggregated and deleted.
        inactive_grace_days: contributors with no observation newer
            than this are forgotten entirely.
        aggregate_before_delete: fold expiring documents into anonymous
            (zone, day) aggregates first.
    """

    raw_retention_days: float = 180.0
    inactive_grace_days: float = 365.0
    aggregate_before_delete: bool = True

    def __post_init__(self) -> None:
        if self.raw_retention_days <= 0 or self.inactive_grace_days <= 0:
            raise ValidationError("retention periods must be > 0")


class RetentionEnforcer:
    """Applies a :class:`RetentionPolicy` to the observation store."""

    def __init__(
        self,
        store: DocumentStore,
        policy: Optional[RetentionPolicy] = None,
        clock: Callable[[], float] = lambda: 0.0,
    ) -> None:
        self._observations = store.collection(OBSERVATIONS)
        self._aggregates = store.collection("observation_aggregates")
        self.policy = policy or RetentionPolicy()
        self._clock = clock

    # -- aggregation ----------------------------------------------------------

    @staticmethod
    def _zone_of(document: Dict[str, Any]) -> str:
        location = document.get("location")
        if not isinstance(location, dict):
            return "NOLOC"
        return f"Z{int(location['x_m'] // 1000)}-{int(location['y_m'] // 1000)}"

    def _aggregate(self, documents: List[Dict[str, Any]]) -> int:
        """Fold documents into (zone, day) aggregates; returns groups."""
        groups: Dict[tuple, List[float]] = {}
        for document in documents:
            day = int(document.get("taken_at", 0.0) // SECONDS_PER_DAY)
            zone = self._zone_of(document)
            groups.setdefault((zone, day), []).append(document["noise_dba"])
        for (zone, day), levels in groups.items():
            existing = self._aggregates.find_one({"zone": zone, "day": day})
            if existing is None:
                self._aggregates.insert_one(
                    {
                        "zone": zone,
                        "day": day,
                        "count": len(levels),
                        "leq_dba": round(leq(levels), 2),
                    }
                )
            else:
                # merge energy means by weighted energy addition
                merged = leq(
                    [existing["leq_dba"], leq(levels)],
                    durations_s=[existing["count"], len(levels)],
                )
                self._aggregates.update_one(
                    {"zone": zone, "day": day},
                    {
                        "$set": {"leq_dba": round(merged, 2)},
                        "$inc": {"count": len(levels)},
                    },
                )
        return len(groups)

    # -- enforcement passes ---------------------------------------------------------

    def expire_raw(self) -> Dict[str, int]:
        """Age out raw observations past the retention window."""
        cutoff = self._clock() - self.policy.raw_retention_days * SECONDS_PER_DAY
        expired = self._observations.find({"taken_at": {"$lt": cutoff}}).to_list()
        aggregated = 0
        if expired and self.policy.aggregate_before_delete:
            aggregated = self._aggregate(expired)
        deleted = self._observations.delete_many({"taken_at": {"$lt": cutoff}})
        return {"deleted": deleted, "aggregated_groups": aggregated}

    def forget_inactive(self) -> Dict[str, int]:
        """Erase all data of contributors inactive past the grace period."""
        cutoff = self._clock() - self.policy.inactive_grace_days * SECONDS_PER_DAY
        rows = self._observations.aggregate(
            [
                {
                    "$group": {
                        "_id": "$contributor",
                        "last": {"$max": "$taken_at"},
                    }
                }
            ]
        )
        inactive = [
            row["_id"]
            for row in rows
            if row["_id"] is not None and row["last"] < cutoff
        ]
        deleted = 0
        for contributor in inactive:
            deleted += self._observations.delete_many(
                {"contributor": contributor}
            )
        return {"forgotten_contributors": len(inactive), "deleted": deleted}

    def run(self) -> Dict[str, int]:
        """One full enforcement pass."""
        expired = self.expire_raw()
        forgotten = self.forget_inactive()
        return {
            "deleted": expired["deleted"] + forgotten["deleted"],
            "aggregated_groups": expired["aggregated_groups"],
            "forgotten_contributors": forgotten["forgotten_contributors"],
        }

    # -- jobs integration ---------------------------------------------------------------

    def register_job(self, jobs: JobManager, name: str = "retention") -> None:
        """Expose enforcement as an auditable background job."""
        jobs.register_script(name, lambda store, params: self.run())
