"""Crowd-sensed data management.

Figure 2: "allows the retrieval of crowd-sensed information based on
various filtering parameters, and various packaging solutions (file,
json stream, ...)". The ingest side persists broker deliveries into the
observations collection after the privacy policy has pseudonymized them.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro import concurrency
from repro.core.errors import ValidationError
from repro.core.materialized import MaterializedAnalytics
from repro.core.privacy import PrivacyPolicy
from repro.docstore.store import DocumentStore

OBSERVATIONS = "observations"

#: Default bound on the ingest dedup ledger (obs_ids remembered).
DEFAULT_DEDUP_CAPACITY = 100_000


@dataclass
class DataQuery:
    """Filter parameters for retrieval (every field optional).

    Attributes mirror the REST API's query parameters: time window over
    ``taken_at``, device model, sensing mode, location provider, maximum
    reported accuracy (meters), contributor pseudonym, localized-only.
    """

    app_id: Optional[str] = None
    since: Optional[float] = None
    until: Optional[float] = None
    model: Optional[str] = None
    mode: Optional[str] = None
    provider: Optional[str] = None
    max_accuracy_m: Optional[float] = None
    contributor: Optional[str] = None
    localized_only: bool = False

    def to_filter(self) -> Dict[str, Any]:
        """The docstore filter document for this query."""
        conditions: Dict[str, Any] = {}
        if self.app_id is not None:
            conditions["app_id"] = self.app_id
        taken: Dict[str, Any] = {}
        if self.since is not None:
            taken["$gte"] = self.since
        if self.until is not None:
            taken["$lt"] = self.until
        if taken:
            conditions["taken_at"] = taken
        if self.model is not None:
            conditions["model"] = self.model
        if self.mode is not None:
            conditions["mode"] = self.mode
        if self.provider is not None:
            conditions["location.provider"] = self.provider
        if self.max_accuracy_m is not None:
            conditions["location.accuracy_m"] = {"$lte": self.max_accuracy_m}
        if self.contributor is not None:
            conditions["contributor"] = self.contributor
        if self.localized_only and "location.provider" not in conditions and (
            self.max_accuracy_m is None
        ):
            conditions["location"] = {"$exists": True}
        return conditions


class DataManager:
    """Stores and retrieves crowd-sensed observations.

    Args:
        store: the backing document store.
        privacy: the CNIL policy applied at ingest and sharing.
        dedup_capacity: bound on the idempotence ledger — how many
            recently seen ``obs_id`` values are remembered to collapse
            at-least-once broker deliveries into exactly-once storage.
            0 disables deduplication.
        region_fn: when this manager is one shard of a sharded
            deployment, the router's region routing key function. Each
            ledger entry then remembers the region its observation
            routed by (journaled alongside the key in the insert's WAL
            record), so a topology change can hand a region's dedup
            state to the shard that now owns it.
    """

    def __init__(
        self,
        store: DocumentStore,
        privacy: PrivacyPolicy,
        dedup_capacity: int = DEFAULT_DEDUP_CAPACITY,
        region_fn: Optional[Callable[[Dict[str, Any]], str]] = None,
    ) -> None:
        if dedup_capacity < 0:
            raise ValidationError(
                f"dedup_capacity must be >= 0, got {dedup_capacity}"
            )
        self._store = store
        self._privacy = privacy
        self._observations = store.collection(OBSERVATIONS)
        # exist_ok: a store recovered from snapshot + WAL already
        # declares these; re-running the declarations must be a no-op.
        self._observations.create_index("model", kind="hash", exist_ok=True)
        self._observations.create_index("taken_at", kind="sorted", exist_ok=True)
        self._observations.create_index("contributor", kind="hash", exist_ok=True)
        self._observations.create_index(
            "location.provider", kind="hash", exist_ok=True
        )
        # columnar mirror over the figure-query hot fields: vectorized
        # $match/$group/$sort kernels serve covered analytics pipelines
        # straight from numpy arrays (no-op when numpy is unavailable).
        self._observations.enable_columnar(
            [
                "model",
                "mode",
                "contributor",
                "taken_at",
                "noise_dba",
                "app_version",
                "location",
                "location.provider",
                "location.accuracy_m",
            ]
        )
        #: online per-model/per-day/per-provider counters, fed by ingest
        #: and shared with the analytics engine by the server.
        self.materialized = MaterializedAnalytics(self._observations)
        self._dedup_capacity = dedup_capacity
        # key -> True (unsharded) or the region string the observation
        # routed by (sharded): the value is what lets rebalancing find
        # and move a region's ledger entries.
        self._dedup_ledger: "OrderedDict[str, Any]" = OrderedDict()
        self._region_fn = region_fn
        self.dedup_hits = 0
        # ingest listeners receive every *stored* observation as
        # ``(document, stored_id)`` pairs, called after the insert and
        # the ledger commit, still inside the ingest lock: listener
        # order therefore equals insertion order, which is what gives
        # the subscription plane gap-free, duplicate-free streams.
        # Deduplicated deliveries never reach a listener.
        self._ingest_listeners: List[
            Callable[[str, List[Tuple[Dict[str, Any], Any]]], None]
        ] = []
        #: public, re-entrant: serializes the whole dedup-check → insert
        #: → observe → ledger-commit sequence. The server wraps its own
        #: delivery counters in the same lock so reliability accounting
        #: can never drift from the ledger mid-ingest.
        self.ingest_lock = concurrency.make_rlock()

    @property
    def collection(self):
        """Direct access to the observations collection (analytics use)."""
        return self._observations

    def add_ingest_listener(
        self,
        listener: Callable[[str, List[Tuple[Dict[str, Any], Any]]], None],
    ) -> None:
        """Register a stored-observation listener (the delta stream).

        ``listener(app_id, [(document, stored_id), ...])`` runs under
        the ingest lock, after the ledger committed — exactly once per
        stored observation, never for a deduplicated delivery.
        """
        self._ingest_listeners.append(listener)

    # -- ingest --------------------------------------------------------------

    def ingest(self, app_id: str, document: Dict[str, Any]) -> Any:
        """Persist one observation document; returns its stored id.

        Applies pseudonymization before the document touches disk.

        Ingest is **idempotent** over ``obs_id``: the uplink is
        at-least-once (retries after unconfirmed publishes, broker
        redeliveries), so clients stamp each observation with a stable
        ``obs_id`` and a redelivered document is recognized against the
        bounded ledger and skipped — returning None instead of an id.
        Documents without an ``obs_id`` (legacy producers, feedback
        blobs) are stored unconditionally.
        """
        if not isinstance(document, dict):
            raise ValidationError(
                f"observation must be a dict, got {type(document).__name__}"
            )
        # the whole check → insert → observe → commit sequence runs
        # under one lock: two threads redelivering the same obs_id must
        # resolve to exactly one stored document, never a double insert
        # from both missing the ledger at once.
        with self.ingest_lock:
            ledger_key: Optional[str] = None
            ledger_value: Any = True
            obs_id = document.get("obs_id")
            if obs_id is not None and self._dedup_capacity:
                ledger_key = str(obs_id)
                if ledger_key in self._dedup_ledger:
                    self._dedup_ledger.move_to_end(ledger_key)
                    self.dedup_hits += 1
                    return None
                if self._region_fn is not None:
                    ledger_value = self._region_fn(document)
            stored = self._privacy.anonymize_ingest(document)
            stored["app_id"] = app_id
            # anonymize_ingest already produced a private copy; let the
            # collection take ownership rather than cloning a second time.
            # The wire-form ledger key travels inside the insert's WAL
            # record: recovery re-learns it if and only if the insert
            # itself survived, keeping exactly-once across a kill -9.
            wal_meta = None
            if ledger_key is not None:
                wal_meta = {"ledger": [ledger_key]}
                if self._region_fn is not None:
                    wal_meta["regions"] = [ledger_value]
            result = self._observations.insert_one(
                stored, copy=False, wal_meta=wal_meta
            )
            self.materialized.observe(stored)
            # the ledger learns the id only once the document is durably
            # stored: a failed insert must stay retryable, not turn the
            # client's redelivery into a dedup hit (silent data loss).
            if ledger_key is not None:
                self._dedup_ledger[ledger_key] = ledger_value
                if len(self._dedup_ledger) > self._dedup_capacity:
                    self._dedup_ledger.popitem(last=False)
            for listener in self._ingest_listeners:
                listener(app_id, [(stored, result)])
            return result

    def ingest_many(
        self, app_id: str, documents: List[Dict[str, Any]], owned: bool = False
    ) -> List[Optional[Any]]:
        """Persist a batch of observations; ids in input order.

        The batch fast path: one ``ingest_lock`` acquisition covers the
        whole batch, and the dedup-ledger checks, pseudonymization, the
        (batch-atomic) collection insert, the materialized fold, and
        the ledger commit are all amortized across it. The returned
        list is parallel to ``documents`` — a stored id per new
        observation, None per deduplicated one (an ``obs_id`` already
        in the ledger, or repeated earlier in the same batch).

        ``owned=True`` declares the documents server-owned already —
        e.g. freshly parsed from a wire body — so pseudonymization may
        scrub them in place instead of cloning first. Never pass
        caller-retained documents as owned.

        Failure keeps the exactly-once contract: ``insert_many`` rolls
        the whole batch back and nothing reaches the ledger, so a
        client retransmitting the batch rolls forward via dedup.
        """
        for document in documents:
            if not isinstance(document, dict):
                raise ValidationError(
                    f"observation must be a dict, got {type(document).__name__}"
                )
        with self.ingest_lock:
            results: List[Optional[Any]] = []
            fresh: List[Dict[str, Any]] = []
            store_slots: List[int] = []
            ledger_keys: List[Optional[str]] = []
            ledger_values: List[Any] = []
            seen_in_batch: set = set()
            for document in documents:
                ledger_key: Optional[str] = None
                ledger_value: Any = True
                obs_id = document.get("obs_id")
                if obs_id is not None and self._dedup_capacity:
                    ledger_key = str(obs_id)
                    if ledger_key in self._dedup_ledger:
                        self._dedup_ledger.move_to_end(ledger_key)
                        self.dedup_hits += 1
                        results.append(None)
                        continue
                    if ledger_key in seen_in_batch:
                        self.dedup_hits += 1
                        results.append(None)
                        continue
                    seen_in_batch.add(ledger_key)
                    if self._region_fn is not None:
                        ledger_value = self._region_fn(document)
                store_slots.append(len(results))
                results.append(None)
                fresh.append(document)
                ledger_keys.append(ledger_key)
                ledger_values.append(ledger_value)
            if fresh:
                to_store = self._privacy.anonymize_ingest_many(fresh, owned=owned)
                for stored in to_store:
                    stored["app_id"] = app_id
                live_keys = [key for key in ledger_keys if key is not None]
                wal_meta = None
                if live_keys:
                    wal_meta = {"ledger": live_keys}
                    if self._region_fn is not None:
                        wal_meta["regions"] = [
                            value
                            for key, value in zip(ledger_keys, ledger_values)
                            if key is not None
                        ]
                ids = self._observations.insert_many(
                    to_store, copy=False, wal_meta=wal_meta
                )
                self.materialized.observe_batch(to_store)
                for slot, doc_id in zip(store_slots, ids):
                    results[slot] = doc_id
                for ledger_key, ledger_value in zip(ledger_keys, ledger_values):
                    if ledger_key is not None:
                        self._dedup_ledger[ledger_key] = ledger_value
                while len(self._dedup_ledger) > self._dedup_capacity:
                    self._dedup_ledger.popitem(last=False)
                for listener in self._ingest_listeners:
                    listener(app_id, list(zip(to_store, ids)))
            return results

    def restore_ledger(
        self, keys: List[str], regions: Optional[List[Any]] = None
    ) -> int:
        """Reload the idempotence ledger after crash recovery.

        ``keys`` come from ``DocumentStore.recover`` (snapshot state +
        the ledger metadata of every replayed insert record), oldest
        first; only the most recent ``dedup_capacity`` survive, exactly
        like the live LRU. ``regions`` is the parallel per-key region
        list recovered alongside (sharded deployments). Returns the
        resulting ledger size.
        """
        with self.ingest_lock:
            if not self._dedup_capacity:
                return 0
            for index, key in enumerate(keys):
                key = str(key)
                value: Any = True
                if regions is not None and index < len(regions):
                    value = regions[index]
                if key in self._dedup_ledger:
                    self._dedup_ledger.move_to_end(key)
                self._dedup_ledger[key] = value
            while len(self._dedup_ledger) > self._dedup_capacity:
                self._dedup_ledger.popitem(last=False)
            return len(self._dedup_ledger)

    # -- shard rebalancing ----------------------------------------------------

    def ledger_entries_for(
        self, regions: Optional[Iterable[str]]
    ) -> List[Tuple[str, Any]]:
        """The ledger entries whose observations routed by ``regions``
        (None: every region-tagged entry — a draining shard hands them
        all off)."""
        wanted = None if regions is None else set(regions)
        with self.ingest_lock:
            return [
                (key, value)
                for key, value in self._dedup_ledger.items()
                if (isinstance(value, str) if wanted is None else value in wanted)
            ]

    def adopt(
        self,
        documents: List[Dict[str, Any]],
        ledger_entries: List[Tuple[str, Any]],
    ) -> List[Any]:
        """Rebalance receive path: take ownership of already-stored
        observations handed off by another shard.

        ``documents`` are storage-form clones that keep their global
        ``_id``s; they replay through the journaled ``insert_many``
        path with the handed-off ledger keys/regions riding the WAL
        record, so both the documents and the dedup state survive a
        crash mid-rebalance exactly like a first ingest would.
        """
        with self.ingest_lock:
            ids: List[Any] = []
            keys = [key for key, _ in ledger_entries]
            values = [value for _, value in ledger_entries]
            if documents:
                wal_meta = None
                if keys:
                    wal_meta = {"ledger": keys, "regions": values}
                ids = self._observations.insert_many(
                    documents, copy=False, wal_meta=wal_meta
                )
                self.materialized.observe_batch(documents)
            elif keys:
                # ledger entries with no surviving documents (retention
                # expiry, erasure) still need a journaled carrier.
                journal = self._store.journal
                if journal is not None:
                    journal.log(
                        {
                            "op": "ledger",
                            "c": OBSERVATIONS,
                            "keys": keys,
                            "regions": values,
                        }
                    )
            if self._dedup_capacity:
                for key, value in ledger_entries:
                    if key in self._dedup_ledger:
                        self._dedup_ledger.move_to_end(key)
                    self._dedup_ledger[key] = value
                while len(self._dedup_ledger) > self._dedup_capacity:
                    self._dedup_ledger.popitem(last=False)
            return ids

    def release_keys(self, keys: Iterable[str]) -> int:
        """Rebalance send path: forget handed-off ledger entries.

        Live-state hygiene only (not journaled): stale keys in this
        shard's WAL are harmless because the region no longer routes
        here, while the adopting shard's journal now owns the entries.
        """
        with self.ingest_lock:
            removed = 0
            for key in keys:
                if self._dedup_ledger.pop(key, None) is not None:
                    removed += 1
            return removed

    def remove_documents(self, ids: Iterable[Any]) -> int:
        """Rebalance send path: journaled delete of handed-off docs."""
        removed = 0
        for doc_id in ids:
            removed += self._observations.delete_one({"_id": doc_id})
        return removed

    def dedup_info(self) -> Dict[str, int]:
        """Observability snapshot of the idempotence ledger."""
        with self.ingest_lock:
            return {
                "size": len(self._dedup_ledger),
                "capacity": self._dedup_capacity,
                "hits": self.dedup_hits,
            }

    def delete_contributor_data(self, app_id: str, user_id: str) -> int:
        """CNIL right-to-erasure: drop a contributor's observations."""
        pseudonym = self._privacy.pseudonym(user_id)
        return self._observations.delete_many(
            {"app_id": app_id, "contributor": pseudonym}
        )

    # -- retrieval ------------------------------------------------------------

    def retrieve(
        self,
        query: DataQuery,
        limit: Optional[int] = None,
        share_with_app: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Documents matching ``query``, newest first.

        ``share_with_app``: when retrieving on behalf of *another* app,
        the owning app's private fields are stripped per the privacy
        policy.
        """
        cursor = self._observations.find(query.to_filter()).sort("taken_at", -1)
        if limit is not None:
            cursor = cursor.limit(limit)
        documents = cursor.to_list()
        if share_with_app is not None and query.app_id is not None and (
            share_with_app != query.app_id
        ):
            documents = [
                self._privacy.for_sharing(query.app_id, doc) for doc in documents
            ]
        return documents

    def count(self, query: DataQuery) -> int:
        """Number of documents matching ``query``."""
        return self._observations.count(query.to_filter())

    # -- packaging ---------------------------------------------------------------

    def as_json_stream(self, query: DataQuery) -> Iterator[str]:
        """The matching documents as a stream of JSON lines."""
        for document in self.retrieve(query):
            document.pop("_id", None)
            yield json.dumps(document, sort_keys=True)

    def as_file(self, query: DataQuery) -> str:
        """The matching documents packaged as one JSON-lines string."""
        return "\n".join(self.as_json_stream(query))

    def as_open_data(self, app_id: str, query: DataQuery) -> List[Dict[str, Any]]:
        """Open-data export: privacy-coarsened documents."""
        return [
            self._privacy.for_open_data(app_id, doc) for doc in self.retrieve(query)
        ]
