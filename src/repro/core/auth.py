"""Token service: bearer tokens for the REST API.

Tokens are opaque random strings mapped server-side to a principal
(app, user, role) with an expiry in simulated time. This mirrors the
paper's "authenticate and register subscribers and publishers" API
without pretending to be a JWT implementation.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.accounts import Role
from repro.core.errors import AuthenticationError, ValidationError


@dataclass(frozen=True)
class Principal:
    """The identity a valid token resolves to."""

    app_id: str
    user_id: str
    role: Role


class TokenService:
    """Issues and validates bearer tokens."""

    def __init__(
        self, clock: Callable[[], float], ttl_s: float = 24 * 3600.0
    ) -> None:
        if ttl_s <= 0:
            raise ValidationError(f"token ttl must be > 0, got {ttl_s}")
        self._clock = clock
        self._ttl = ttl_s
        self._tokens: Dict[str, tuple] = {}  # token -> (Principal, expiry)

    def issue(self, app_id: str, user_id: str, role: Role) -> str:
        """Create a token for the principal; returns the bearer string."""
        token = secrets.token_urlsafe(24)
        principal = Principal(app_id=app_id, user_id=user_id, role=role)
        self._tokens[token] = (principal, self._clock() + self._ttl)
        return token

    def validate(self, token: Optional[str]) -> Principal:
        """Resolve a token; raises :class:`AuthenticationError` if invalid."""
        if not token:
            raise AuthenticationError("missing bearer token")
        entry = self._tokens.get(token)
        if entry is None:
            raise AuthenticationError("unknown token")
        principal, expiry = entry
        if self._clock() > expiry:
            del self._tokens[token]
            raise AuthenticationError("token expired")
        return principal

    def revoke(self, token: str) -> None:
        """Invalidate a token immediately (logout)."""
        self._tokens.pop(token, None)

    def active_count(self) -> int:
        """Number of unexpired tokens."""
        now = self._clock()
        return sum(1 for _, expiry in self._tokens.values() if expiry >= now)
