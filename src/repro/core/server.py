"""The GoFlow server: the middleware's composition root.

Wires the subsystems of Figure 2 together over one broker and one
document store:

- consumes the GoFlow queue and persists every crowd-sensed message
  through the privacy policy (ingest path of Figure 1);
- exposes the REST API (login, data retrieval, account and job
  management, subscriptions);
- hands mobile clients their channel ids at login (Figure 3).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.broker.broker import Broker, DEFAULT_ROUTE_CACHE_SIZE
from repro.broker.message import Delivery
from repro.core.accounts import AccountManager, Role
from repro.core.analytics import AnalyticsEngine
from repro.core.api import GoFlowAPI, Request, Response
from repro.core.auth import TokenService
from repro.core.channels import ChannelManager, GOFLOW_QUEUE
from repro.core.datamgmt import DataManager, DataQuery
from repro.core.errors import ValidationError
from repro.core.jobs import JobManager
from repro.core.privacy import PrivacyPolicy
from repro.docstore.store import DocumentStore
from repro.sharding.region import DEFAULT_CELL_M
from repro.sharding.router import ShardRouter, ShardingConfig
from repro.streaming.filters import FilterSpec
from repro.streaming.subscriptions import SubscriptionManager


class GoFlowServer:
    """One deployed GoFlow instance."""

    def __init__(
        self,
        broker: Optional[Broker] = None,
        store: Optional[DocumentStore] = None,
        privacy: Optional[PrivacyPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
        route_cache_size: int = DEFAULT_ROUTE_CACHE_SIZE,
        durable: bool = False,
        data_dir: Optional[str] = None,
        wal_config: Optional[Any] = None,
        sharding: Optional[Union[int, ShardingConfig]] = None,
        backend: str = "inproc",
    ) -> None:
        """Args beyond the obvious:

        durable: opt-in crash safety — recover the document store from
            ``data_dir`` (snapshot + write-ahead log) on startup and
            journal every write from here on. The ingest dedup ledger
            is restored from the log, so the exactly-once guarantee
            survives a kill -9 between two server lives.
        data_dir: durable-mode data directory (required with durable).
        wal_config: a :class:`repro.docstore.wal.WalConfig` overriding
            the sync/rotation defaults (group commit, segment size).
        sharding: opt-in horizontal partitioning — a shard count (or a
            :class:`~repro.sharding.router.ShardingConfig`) splits the
            observation plane across that many store+broker shards
            behind a :class:`~repro.sharding.router.ShardRouter`
            keyed by each observation's region. ``self.data`` becomes
            the router; accounts, jobs and tokens stay on the server's
            own store. With ``durable`` the shards journal under
            ``data_dir/shards/<name>``.
        backend: shard execution plane — ``"inproc"`` (default) keeps
            every shard in this interpreter; ``"process"`` hosts each
            shard's vertical slice in a long-lived worker process
            behind batched binary IPC (``GoFlowServer(sharding=N,
            backend="process")``). Ignored unless ``sharding`` is set;
            a full :class:`ShardingConfig` carries its own backend.
        """
        self._clock = clock or (lambda: 0.0)
        self.broker = broker or Broker(
            clock=self._clock, route_cache_size=route_cache_size
        )
        if durable:
            if data_dir is None:
                raise ValidationError("durable=True requires data_dir")
            if store is not None:
                raise ValidationError("durable=True builds its own store")
            self.store = DocumentStore.recover(
                data_dir, clock=self._clock, config=wal_config
            )
        else:
            self.store = store or DocumentStore(clock=self._clock)
        self.privacy = privacy or PrivacyPolicy()
        self.accounts = AccountManager(self.store)
        self.tokens = TokenService(self._clock)
        self.channels = ChannelManager(self.broker)
        if sharding is not None:
            config = (
                sharding
                if isinstance(sharding, ShardingConfig)
                else ShardingConfig(shards=sharding, backend=backend)
            )
            self.router: Optional[ShardRouter] = ShardRouter(
                self.privacy,
                clock=self._clock,
                config=config,
                durable=durable,
                data_dir=(str(Path(data_dir) / "shards") if durable else None),
                wal_config=wal_config,
            )
            # the router speaks the DataManager surface; everything
            # downstream (REST handlers, analytics, packaging) is
            # oblivious to the partitioning.
            self.data: Any = self.router
        else:
            self.router = None
            self.data = DataManager(self.store, self.privacy)
            if durable:
                # the ledger keys replayed out of the WAL make a
                # restarted server dedupe retransmissions exactly like
                # the one that crashed would have. (A sharded router
                # restores each shard's ledger itself.)
                self.data.restore_ledger(
                    self.store.recovered_state.get("dedup_ledger", [])
                )
        if durable:
            # broker topology is transient (the broker is not journaled):
            # redeclare each recovered app's exchange so clients can log
            # back in — their E/Q pairs are recreated lazily at login.
            for app_id in self.accounts.app_ids():
                self.channels.register_app(app_id)
        self.jobs = JobManager(self.store, self._clock)
        # the analytics engine serves its hot statistics from the same
        # materialized counters the ingest path keeps fresh; a sharded
        # server also swaps in the scatter-gather collection facade so
        # pipeline fallbacks span every shard.
        self.analytics = AnalyticsEngine(
            self.store,
            materialized=self.data.materialized,
            observations=(self.data.collection if self.router is not None else None),
        )
        self.api = GoFlowAPI(self.tokens)
        # the live subscription plane. Deliberately transient — never
        # journaled — so a recovered durable server starts with zero
        # subscriptions (no phantom cursors); consumers re-subscribe
        # and stream post-recovery deltas only.
        self.streaming = SubscriptionManager(
            clock=self._clock,
            cell_m=(
                self.router.cell_m if self.router is not None else DEFAULT_CELL_M
            ),
        )
        if self.router is not None:
            # per-shard delta streams come back through the router in
            # global _id order (the coordinator-side merge).
            self.router.set_delta_listener(self.streaming.on_stored)
        else:
            self.data.add_ingest_listener(self.streaming.on_stored)
        # the post-confirm broker tap: counts GoFlow-queue deliveries
        # the broker took responsibility for — by the time it fires,
        # the inline consumer already ingested and the matching events
        # are already in subscriber outboxes.
        self.broker.add_delivery_tap(self._on_confirmed_delivery)
        # counters exist before the consumer is registered: a delivery
        # racing construction must find them, not an AttributeError.
        self._ingested = 0
        self._deduped = 0
        self._register_routes()
        self._start_ingest()

    @property
    def ingested(self) -> int:
        """Observations stored (summed across shards when sharded)."""
        if self.router is not None:
            return self.router.total_ingested
        return self._ingested

    @property
    def deduped(self) -> int:
        """Redeliveries collapsed by the dedup ledger (all shards)."""
        if self.router is not None:
            return self.router.total_deduped
        return self._deduped

    # -- ingest path ------------------------------------------------------------

    def _start_ingest(self) -> None:
        connection = self.broker.connect("goflow-server")
        channel = connection.channel()
        channel.basic_consume(
            GOFLOW_QUEUE, self._on_delivery, auto_ack=True, consumer_tag="gf-ingest"
        )

    def _on_delivery(self, delivery: Delivery) -> None:
        document = delivery.body
        if not isinstance(document, dict):
            return  # non-observation traffic (e.g. feedback blobs) is ignored
        # never mutate the delivered body: the broker may have fanned the
        # same message out to subscriber queues.
        app_id = document.get("app_id") or self._app_from_key(
            delivery.message.routing_key
        )
        if self.router is not None:
            # the router locks the owning shard and moves that shard's
            # counters itself; server totals are summed on demand.
            self.router.ingest(app_id, document)
            return
        # the delivery counters move under the same lock as the dedup
        # ledger, so at any instant ``deduped == dedup_ledger["hits"]``
        # for traffic that flows through this server.
        with self.data.ingest_lock:
            if self.data.ingest(app_id, document) is None:
                # at-least-once uplink redelivered a known obs_id: the
                # ledger collapsed it to exactly-once storage.
                self._deduped += 1
            else:
                self._ingested += 1

    @staticmethod
    def _app_from_key(routing_key: str) -> str:
        # client publishes route "<zone>.<datatype>"; the app id travels
        # in the exchange chain, so default to the datatype's owner.
        return "unknown-app"

    def _on_confirmed_delivery(self, queue_name: str, message: Any) -> None:
        # only the ingest queue is streaming-relevant; client-facing
        # subscription queues tap nothing.
        if queue_name == GOFLOW_QUEUE:
            self.streaming.on_broker_delivery(queue_name, message)

    # -- observability ----------------------------------------------------------

    def middleware_stats(self) -> Dict[str, Any]:
        """Broker and store hot-path counters, cache behaviour included.

        The ``reliability`` section is the delivery-semantics evidence:
        broker redeliveries on the GoFlow queue, dedup-ledger hits, and
        (when a fault injector is installed) how many faults of each
        kind actually fired.

        Every section is a *coherent snapshot*: each layer's counters
        are copied under that layer's lock, and the reliability section
        is read under the ingest lock, so a stats call racing live
        ingest can never observe ``ingested``/``deduped`` torn apart
        from the dedup ledger they must sum with.
        """
        broker_stats = self.broker.stats_snapshot()
        collection_stats = self.data.collection.stats_snapshot()
        goflow_queue = self.broker.get_queue(GOFLOW_QUEUE)
        queue_stats = goflow_queue.stats_snapshot()
        broker_extras = {
            "redeliveries": queue_stats.requeued,
            "delayed_in_flight": self.broker.delayed_count,
            "faults": (
                self.broker.faults.info() if self.broker.faults is not None else None
            ),
        }
        if self.router is not None:
            # one pass with every shard's ingest lock held: the merged
            # counters are as coherent as a single shard's would be.
            reliability = self.router.reliability_snapshot()
            reliability.update(broker_extras)
        else:
            with self.data.ingest_lock:
                reliability = {
                    "deduped": self._deduped,
                    "ingested": self._ingested,
                    "dedup_ledger": self.data.dedup_info(),
                    **broker_extras,
                }
        return {
            "ingested": reliability.pop("ingested"),
            "reliability": reliability,
            "broker": {
                "publishes": broker_stats.publishes,
                "routed": broker_stats.routed,
                "unroutable": broker_stats.unroutable,
                "route_cache": self.broker.route_cache_info(),
                "topic_cache_hits": broker_stats.topic_cache_hits,
                "topic_cache_misses": broker_stats.topic_cache_misses,
            },
            "observations": {
                "inserts": collection_stats.inserts,
                "queries": collection_stats.queries,
                "index_hits": collection_stats.index_hits,
                "full_scans": collection_stats.full_scans,
                "plan_cache_hits": collection_stats.plan_cache_hits,
                "plan_cache_misses": collection_stats.plan_cache_misses,
            },
            "materialized": self.data.materialized.info(),
            "columnar": self.data.collection.columnar_info(),
            "durability": (
                self.router.durability_info()
                if self.router is not None
                else self.store.durability_info()
            ),
            "sharding": (
                self.router.sharding_stats()
                if self.router is not None
                else {"enabled": False}
            ),
            "streaming": self.streaming.stats(),
        }

    def checkpoint(self) -> int:
        """Compact the WAL into a snapshot; returns the document count.

        A sharded server checkpoints every shard plus its own
        (accounts/jobs) store and returns the summed document count.
        """
        if self.router is not None:
            total = sum(self.router.checkpoint().values())
            if self.store.journal is not None:
                total += self.store.checkpoint()
            return total
        return self.store.checkpoint()

    # -- app/user lifecycle (programmatic surface) ---------------------------------

    def register_app(
        self, app_id: str, private_fields: Optional[List[str]] = None
    ) -> str:
        """Register an application end-to-end; returns its exchange name."""
        self.accounts.register_app(app_id)
        if private_fields is not None:
            self.privacy.set_private_fields(app_id, private_fields)
        return self.channels.register_app(app_id)

    def login_client(
        self, app_id: str, user_id: str, password: str
    ) -> Dict[str, str]:
        """Authenticate and create the client's channels.

        Returns the token plus the exchange/queue ids the mobile client
        connects to — exactly the handshake §3.2 describes.
        """
        account = self.accounts.verify_credentials(app_id, user_id, password)
        token = self.tokens.issue(app_id, user_id, account.role)
        channels = self.channels.client_login(app_id, user_id)
        return {
            "token": token,
            "exchange": channels.exchange,
            "queue": channels.queue,
        }

    def enroll_user(
        self, app_id: str, user_id: str, password: str, role: Role = Role.CONTRIBUTOR
    ) -> Dict[str, str]:
        """Create an account and log it in (the app's first-run flow)."""
        self.accounts.create_account(app_id, user_id, password, role=role)
        return self.login_client(app_id, user_id, password)

    # -- REST routes ------------------------------------------------------------------

    def _register_routes(self) -> None:
        api = self.api
        api.route("POST", "/auth/login", self._r_login)
        api.route("POST", "/apps/{app_id}/users", self._r_create_user, Role.MANAGER)
        api.route("DELETE", "/apps/{app_id}/users/{user_id}", self._r_delete_user, Role.MANAGER)
        api.route("GET", "/apps/{app_id}/users", self._r_list_users, Role.MANAGER)
        api.route("POST", "/apps/{app_id}/observations/batch", self._r_ingest_batch, Role.CONTRIBUTOR)
        api.route("GET", "/apps/{app_id}/data", self._r_get_data, Role.CONTRIBUTOR)
        api.route("GET", "/apps/{app_id}/data/count", self._r_count_data, Role.CONTRIBUTOR)
        api.route("POST", "/apps/{app_id}/subscriptions", self._r_subscribe, Role.CONTRIBUTOR)
        api.route("POST", "/apps/{app_id}/stream/subscriptions", self._r_stream_subscribe, Role.CONTRIBUTOR)
        api.route("GET", "/apps/{app_id}/stream/subscriptions/{sub_id}/events", self._r_stream_events, Role.CONTRIBUTOR)
        api.route("DELETE", "/apps/{app_id}/stream/subscriptions/{sub_id}", self._r_stream_unsubscribe, Role.CONTRIBUTOR)
        api.route("POST", "/apps/{app_id}/jobs", self._r_submit_job, Role.MANAGER)
        api.route("POST", "/apps/{app_id}/jobs/{job_id}/run", self._r_run_job, Role.MANAGER)
        api.route("GET", "/apps/{app_id}/jobs/{job_id}", self._r_get_job, Role.CONTRIBUTOR)
        api.route("GET", "/apps/{app_id}/analytics/totals", self._r_totals, Role.CONTRIBUTOR)
        api.route("GET", "/apps/{app_id}/analytics/models", self._r_models, Role.CONTRIBUTOR)
        api.route("POST", "/apps/{app_id}/admin/checkpoint", self._r_checkpoint, Role.MANAGER)
        api.route("GET", "/apps/{app_id}/admin/durability", self._r_durability, Role.MANAGER)
        api.route("GET", "/apps/{app_id}/admin/sharding", self._r_sharding, Role.MANAGER)
        api.route("POST", "/apps/{app_id}/admin/shards", self._r_add_shard, Role.MANAGER)
        api.route("DELETE", "/apps/{app_id}/admin/shards/{shard}", self._r_remove_shard, Role.MANAGER)

    def handle(self, request: Request) -> Response:
        """Entry point for REST traffic."""
        return self.api.dispatch(request)

    # Handlers ----------------------------------------------------------------

    def _r_login(self, request: Request, path: Dict[str, str], _p) -> Any:
        body = request.body or {}
        for required in ("app_id", "user_id", "password"):
            if required not in body:
                raise ValidationError(f"missing field {required!r}")
        return self.login_client(body["app_id"], body["user_id"], body["password"])

    def _r_create_user(self, request: Request, path: Dict[str, str], principal) -> Any:
        body = request.body or {}
        if "user_id" not in body or "password" not in body:
            raise ValidationError("missing user_id or password")
        role = Role(body.get("role", Role.CONTRIBUTOR.value))
        account = self.accounts.create_account(
            path["app_id"], body["user_id"], body["password"], role=role
        )
        return {"user_id": account.user_id, "role": account.role.value}

    def _r_delete_user(self, request: Request, path: Dict[str, str], principal) -> Any:
        self.accounts.remove_account(path["app_id"], path["user_id"])
        deleted = self.data.delete_contributor_data(path["app_id"], path["user_id"])
        return {"deleted_observations": deleted}

    def _r_list_users(self, request: Request, path: Dict[str, str], principal) -> Any:
        return [
            {"user_id": a.user_id, "role": a.role.value, "active": a.active}
            for a in self.accounts.accounts_for_app(path["app_id"])
        ]

    def _r_ingest_batch(self, request: Request, path: Dict[str, str], principal) -> Any:
        """Batch ingest: one locked pass for a whole uplink chunk.

        Server-side dedup makes the endpoint idempotent per
        observation: a client that is unsure whether a batch landed
        simply retransmits it, and already-stored ``obs_id`` values
        report ``accepted: false`` without double-storing.
        """
        body = request.body or {}
        owned = False
        if isinstance(body, str):
            # wire form: the body arrives as the serialized JSON an HTTP
            # transport would deliver. The parse both validates and
            # produces server-owned documents, so ingest can skip its
            # own defensive clone.
            try:
                body = json.loads(body)
            except ValueError as exc:
                raise ValidationError(f"malformed JSON body: {exc}") from exc
            if not isinstance(body, dict):
                raise ValidationError("JSON body must be an object")
            owned = True
        observations = body.get("observations")
        if not isinstance(observations, list):
            raise ValidationError("missing or malformed 'observations' list")
        for observation in observations:
            if not isinstance(observation, dict):
                raise ValidationError("each observation must be a dict")
        if self.router is not None:
            # the router splits the batch by owning shard and counts
            # per shard under each shard's own ingest lock.
            ids = self.router.ingest_many(path["app_id"], observations, owned=owned)
            stored = sum(1 for doc_id in ids if doc_id is not None)
            deduped = len(ids) - stored
        else:
            # same lock discipline as _on_delivery: the server's delivery
            # counters move with the ledger, never apart from it.
            with self.data.ingest_lock:
                ids = self.data.ingest_many(
                    path["app_id"], observations, owned=owned
                )
                stored = sum(1 for doc_id in ids if doc_id is not None)
                deduped = len(ids) - stored
                self._ingested += stored
                self._deduped += deduped
        return {
            "accepted": [doc_id is not None for doc_id in ids],
            "ingested": stored,
            "deduped": deduped,
        }

    def _query_from_params(self, app_id: str, params: Dict[str, str]) -> DataQuery:
        def _float(name: str) -> Optional[float]:
            raw = params.get(name)
            if raw is None:
                return None
            try:
                return float(raw)
            except ValueError:
                raise ValidationError(f"parameter {name!r} must be numeric")

        return DataQuery(
            app_id=app_id,
            since=_float("since"),
            until=_float("until"),
            model=params.get("model"),
            mode=params.get("mode"),
            provider=params.get("provider"),
            max_accuracy_m=_float("max_accuracy_m"),
            contributor=params.get("contributor"),
            localized_only=params.get("localized_only") == "true",
        )

    def _r_get_data(self, request: Request, path: Dict[str, str], principal) -> Any:
        query = self._query_from_params(path["app_id"], request.params)
        limit_raw = request.params.get("limit")
        if limit_raw:
            try:
                limit = int(limit_raw)
            except ValueError:
                raise ValidationError("parameter 'limit' must be an integer")
            if limit < 0:
                raise ValidationError("parameter 'limit' must be >= 0")
        else:
            limit = 100
        share_with = principal.app_id if principal else None
        documents = self.data.retrieve(query, limit=limit, share_with_app=share_with)
        for document in documents:
            document.pop("_id", None)
        return documents

    def _r_count_data(self, request: Request, path: Dict[str, str], principal) -> Any:
        query = self._query_from_params(path["app_id"], request.params)
        return {"count": self.data.count(query)}

    def _r_subscribe(self, request: Request, path: Dict[str, str], principal) -> Any:
        body = request.body or {}
        if "location_id" not in body or "datatype" not in body:
            raise ValidationError("missing location_id or datatype")
        routing = self.channels.subscribe(
            path["app_id"], principal.user_id, body["location_id"], body["datatype"]
        )
        return {"routing_exchange": routing}

    def _r_stream_subscribe(self, request: Request, path: Dict[str, str], principal) -> Any:
        """Register a continuous query; the long-poll subscribe verb.

        The path app is forced into the filter spec: a stream only ever
        carries observations of the app the caller authenticated
        against (same isolation as ``GET /apps/{app_id}/data``).
        """
        body = request.body or {}
        if not isinstance(body, dict):
            raise ValidationError("subscription body must be an object")
        spec = FilterSpec.from_body(path["app_id"], body)
        for knob in ("capacity", "max_overruns"):
            value = body.get(knob)
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool)
            ):
                raise ValidationError(f"{knob!r} must be an integer")
        sub_id = self.streaming.subscribe(
            spec,
            observations=bool(body.get("observations", True)),
            tiles=bool(body.get("tiles", False)),
            capacity=body.get("capacity"),
            max_overruns=body.get("max_overruns"),
            owner_app=path["app_id"],
            owner_user=principal.user_id if principal else None,
        )
        return {"subscription_id": sub_id, "cursor": 0}

    def _r_stream_events(self, request: Request, path: Dict[str, str], principal) -> Any:
        """The ``next_events`` long-poll: ack a cursor, fetch past it.

        Scoped like every other ``/apps/{app_id}`` verb: sub ids are
        guessable, so the manager 404s any poll whose path app or
        authenticated user isn't the subscription's owner.
        """

        def _int(name: str) -> Optional[int]:
            raw = request.params.get(name)
            if raw is None:
                return None
            try:
                return int(raw)
            except ValueError:
                raise ValidationError(f"parameter {name!r} must be an integer")

        limit = _int("limit")
        return self.streaming.next_events(
            path["sub_id"],
            ack=_int("ack"),
            limit=100 if limit is None else limit,
            app_id=path["app_id"],
            user_id=principal.user_id if principal else None,
        )

    def _r_stream_unsubscribe(self, request: Request, path: Dict[str, str], principal) -> Any:
        return self.streaming.unsubscribe(
            path["sub_id"],
            app_id=path["app_id"],
            user_id=principal.user_id if principal else None,
        )

    def _r_submit_job(self, request: Request, path: Dict[str, str], principal) -> Any:
        body = request.body or {}
        if "script" not in body:
            raise ValidationError("missing script")
        job = self.jobs.submit(
            path["app_id"],
            body["script"],
            params=body.get("params"),
            submitted_by=principal.user_id,
        )
        return {"job_id": job.job_id, "status": job.status.value}

    def _r_run_job(self, request: Request, path: Dict[str, str], principal) -> Any:
        job = self.jobs.run(int(path["job_id"]))
        return {"job_id": job.job_id, "status": job.status.value, "error": job.error}

    def _r_get_job(self, request: Request, path: Dict[str, str], principal) -> Any:
        job = self.jobs.get(int(path["job_id"]))
        return {
            "job_id": job.job_id,
            "status": job.status.value,
            "result": job.result,
            "error": job.error,
        }

    def _r_checkpoint(self, request: Request, path: Dict[str, str], principal) -> Any:
        if self.store.journal is None:
            raise ValidationError("server is not running in durable mode")
        return {"snapshot_docs": self.checkpoint()}

    def _r_durability(self, request: Request, path: Dict[str, str], principal) -> Any:
        if self.router is not None:
            return self.router.durability_info()
        return self.store.durability_info()

    def _r_sharding(self, request: Request, path: Dict[str, str], principal) -> Any:
        if self.router is None:
            return {"enabled": False}
        return self.router.sharding_stats()

    def _r_add_shard(self, request: Request, path: Dict[str, str], principal) -> Any:
        if self.router is None:
            raise ValidationError("server is not running in sharded mode")
        body = request.body or {}
        return self.router.add_shard(body.get("name"))

    def _r_remove_shard(self, request: Request, path: Dict[str, str], principal) -> Any:
        if self.router is None:
            raise ValidationError("server is not running in sharded mode")
        return self.router.remove_shard(path["shard"])

    def _r_totals(self, request: Request, path: Dict[str, str], principal) -> Any:
        return self.analytics.totals()

    def _r_models(self, request: Request, path: Dict[str, str], principal) -> Any:
        return self.analytics.per_model_table()
