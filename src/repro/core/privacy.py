"""The CNIL privacy policy.

§3.1: "GoFlow implements the privacy policy set by the French CNIL ...
contributing applications specify the data that they want to keep
private and those that they agree to share with other applications."

Three mechanisms:

- **pseudonymization** — user ids are replaced by a salted-hash
  pseudonym before storage; the web application server keeps the
  mapping "so that specific contributions may be retrieved provided the
  user's credentials", which here means the pseudonym is deterministic
  given the (secret) salt and re-derivable for an authenticated user
  but not invertible from stored data;
- **private-field stripping** — per-app lists of document fields that
  are removed when data is shared outside the owning app;
- **open-data coarsening** — positions are snapped to a coarse grid and
  exact timestamps rounded before export.
"""

from __future__ import annotations

import hashlib
import hmac
import json
from typing import Any, Dict, Iterable, List, Set

from repro import concurrency
from repro.core.errors import ValidationError
from repro.docstore.clone import json_clone


class PrivacyPolicy:
    """Applies the CNIL rules to observation documents.

    Args:
        salt: secret pseudonymization salt (per deployment).
        coarse_grid_m: open-data position granularity.
        coarse_time_s: open-data timestamp granularity.
    """

    def __init__(
        self,
        salt: str = "goflow-secret-salt",
        coarse_grid_m: float = 500.0,
        coarse_time_s: float = 3600.0,
    ) -> None:
        if not salt:
            raise ValidationError("pseudonymization salt must be non-empty")
        if coarse_grid_m <= 0 or coarse_time_s <= 0:
            raise ValidationError("coarsening granularities must be > 0")
        self._salt = salt.encode("utf-8")
        self.coarse_grid_m = coarse_grid_m
        self.coarse_time_s = coarse_time_s
        self._private_fields: Dict[str, Set[str]] = {}
        # pseudonyms are deterministic, so the HMAC per observation is
        # pure waste for repeat contributors; bound the memo so millions
        # of users cannot grow it without limit.
        self._pseudonym_cache: Dict[str, str] = {}
        self._pseudonym_cache_size = 65536
        # guards the memo (the size check + clear + put must not
        # interleave); the HMAC itself runs outside the lock.
        self._cache_lock = concurrency.make_rlock()

    def clone(self) -> "PrivacyPolicy":
        """A fresh, equivalent policy — same deployment secret and
        granularities, private-field declarations copied as of now.

        Shard worker processes rebuild their policy from this instead
        of reusing the fork-inherited object: the clone starts with
        fresh locks and an empty pseudonym memo, so whatever lock or
        cache state the fork snapshotted cannot leak into the child.
        Pseudonyms stay identical across processes because they are
        deterministic in the salt.
        """
        twin = PrivacyPolicy(
            salt=self._salt.decode("utf-8"),
            coarse_grid_m=self.coarse_grid_m,
            coarse_time_s=self.coarse_time_s,
        )
        twin._private_fields = {
            app_id: set(fields) for app_id, fields in self._private_fields.items()
        }
        return twin

    # -- app policies -------------------------------------------------------

    def set_private_fields(self, app_id: str, fields: Iterable[str]) -> None:
        """Declare which fields ``app_id`` keeps private."""
        self._private_fields[app_id] = set(fields)

    def private_fields(self, app_id: str) -> Set[str]:
        """Fields kept private by ``app_id`` (empty set if undeclared)."""
        return set(self._private_fields.get(app_id, set()))

    # -- pseudonymization ---------------------------------------------------------

    def pseudonym(self, user_id: str) -> str:
        """Stable, non-invertible pseudonym for ``user_id``."""
        with self._cache_lock:
            cached = self._pseudonym_cache.get(user_id)
        if cached is not None:
            return cached
        if not user_id:
            raise ValidationError("user_id must be non-empty")
        digest = hmac.new(self._salt, user_id.encode("utf-8"), hashlib.sha256)
        pseudonym = "p" + digest.hexdigest()[:16]
        with self._cache_lock:
            if len(self._pseudonym_cache) >= self._pseudonym_cache_size:
                self._pseudonym_cache.clear()
            self._pseudonym_cache[user_id] = pseudonym
        return pseudonym

    def anonymize_ingest(self, document: Dict[str, Any]) -> Dict[str, Any]:
        """The storage form of an incoming observation.

        Replaces ``user_id`` by its pseudonym; the raw id never reaches
        the document store. That guarantee covers every persisted field:
        a dedup ``obs_id`` that embeds the raw id (legacy clients stamp
        ``<user_id>:<seq>``) is rewritten onto the pseudonym before
        storage — deduplication happens upstream on the wire form, so
        the rewrite cannot split retry duplicates.
        """
        return self._scrub(json_clone(document))

    def anonymize_ingest_many(
        self, documents: List[Dict[str, Any]], owned: bool = False
    ) -> List[Dict[str, Any]]:
        """Batch form of :meth:`anonymize_ingest`.

        Observation documents arrive in wire (JSON) form, so the whole
        batch is cloned with one C-level ``json.dumps``/``loads`` round
        trip instead of one Python-recursive walk per document. Batches
        that are not JSON-representable (exotic value types) fall back
        to the per-document path. ``owned=True`` skips the clone
        entirely and scrubs in place — only for documents the caller
        exclusively owns (e.g. just parsed from a wire body).
        """
        if owned:
            return [self._scrub(doc) for doc in documents]
        try:
            clones = json.loads(json.dumps(documents))
        except (TypeError, ValueError):
            return [self._scrub(json_clone(doc)) for doc in documents]
        return [self._scrub(doc) for doc in clones]

    def _scrub(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        """In-place user_id -> pseudonym rewrite of an owned clone."""
        user_id = doc.pop("user_id", None)
        if user_id is not None:
            user_id = str(user_id)
            pseudonym = self.pseudonym(user_id)
            doc["contributor"] = pseudonym
            obs_id = doc.get("obs_id")
            if isinstance(obs_id, str):
                if obs_id == user_id:
                    doc["obs_id"] = pseudonym
                elif obs_id.startswith(user_id + ":"):
                    doc["obs_id"] = pseudonym + obs_id[len(user_id):]
        return doc

    # -- sharing ----------------------------------------------------------------------

    def for_sharing(self, app_id: str, document: Dict[str, Any]) -> Dict[str, Any]:
        """A copy of ``document`` with ``app_id``'s private fields removed."""
        doc = json_clone(document)
        for field_path in self.private_fields(app_id):
            self._remove_path(doc, field_path)
        return doc

    def for_open_data(self, app_id: str, document: Dict[str, Any]) -> Dict[str, Any]:
        """Open-data export form: shared fields only, coarsened.

        The contributor pseudonym is dropped entirely — and so is the
        ``obs_id`` dedup stamp, whose per-client prefix would otherwise
        re-link the contributor's observations — the position is
        snapped to the coarse grid and timestamps rounded down.
        """
        doc = self.for_sharing(app_id, document)
        doc.pop("contributor", None)
        doc.pop("obs_id", None)
        doc.pop("_id", None)
        location = doc.get("location")
        if isinstance(location, dict):
            for axis in ("x_m", "y_m"):
                if axis in location:
                    location[axis] = (
                        int(location[axis] // self.coarse_grid_m)
                        * self.coarse_grid_m
                    )
        for time_field in ("taken_at", "sent_at", "received_at"):
            if time_field in doc:
                doc[time_field] = (
                    int(doc[time_field] // self.coarse_time_s) * self.coarse_time_s
                )
        return doc

    @staticmethod
    def _remove_path(document: Dict[str, Any], path: str) -> None:
        segments = path.split(".")
        current: Any = document
        for segment in segments[:-1]:
            if not isinstance(current, dict) or segment not in current:
                return
            current = current[segment]
        if isinstance(current, dict):
            current.pop(segments[-1], None)
