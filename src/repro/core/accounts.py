"""Account and access management.

Figure 2's "Account and access management ... add/remove users with
different roles for the registered apps". Apps register first; users
(and administrators) are created under an app with a role. Credentials
are salted-hash verified; authentication hands out tokens via
:class:`~repro.core.auth.TokenService`.
"""

from __future__ import annotations

import enum
import hashlib
import secrets
from dataclasses import dataclass
from typing import List

from repro.core.errors import (
    AuthenticationError,
    AuthorizationError,
    NotFoundError,
    ValidationError,
)
from repro.docstore.store import DocumentStore


class Role(enum.Enum):
    """Access roles, least to most privileged."""

    CONTRIBUTOR = "contributor"
    MANAGER = "manager"
    ADMIN = "admin"

    def at_least(self, other: "Role") -> bool:
        """Role dominance: admin > manager > contributor."""
        order = [Role.CONTRIBUTOR, Role.MANAGER, Role.ADMIN]
        return order.index(self) >= order.index(other)


@dataclass
class Account:
    """One user account within an app."""

    app_id: str
    user_id: str
    role: Role
    active: bool = True


def _hash_password(password: str, salt: str) -> str:
    return hashlib.sha256(f"{salt}:{password}".encode("utf-8")).hexdigest()


class AccountManager:
    """Manages apps and their user accounts, persisted in the store."""

    def __init__(self, store: DocumentStore) -> None:
        self._apps = store.collection("apps")
        self._accounts = store.collection("accounts")
        # exist_ok: a durably recovered store replays these declarations
        # out of the WAL before the manager re-runs them here.
        self._accounts.create_index("app_id", kind="hash", exist_ok=True)
        self._accounts.create_index("key", kind="hash", unique=True, exist_ok=True)

    # -- apps ---------------------------------------------------------------

    def register_app(self, app_id: str, display_name: str = "") -> None:
        """Register an application with the middleware."""
        if not app_id:
            raise ValidationError("app_id must be non-empty")
        if self._apps.find_one({"app_id": app_id}) is not None:
            raise ValidationError(f"app {app_id!r} already registered")
        self._apps.insert_one(
            {"app_id": app_id, "display_name": display_name or app_id}
        )

    def app_exists(self, app_id: str) -> bool:
        """Whether ``app_id`` is registered."""
        return self._apps.find_one({"app_id": app_id}) is not None

    def app_ids(self) -> List[str]:
        """All registered app ids."""
        return [doc["app_id"] for doc in self._apps.find()]

    def _require_app(self, app_id: str) -> None:
        if not self.app_exists(app_id):
            raise NotFoundError(f"unknown app {app_id!r}")

    # -- accounts ---------------------------------------------------------------

    @staticmethod
    def _key(app_id: str, user_id: str) -> str:
        return f"{app_id}/{user_id}"

    def create_account(
        self,
        app_id: str,
        user_id: str,
        password: str,
        role: Role = Role.CONTRIBUTOR,
    ) -> Account:
        """Create a user account under ``app_id``."""
        self._require_app(app_id)
        if not user_id or not password:
            raise ValidationError("user_id and password must be non-empty")
        key = self._key(app_id, user_id)
        if self._accounts.find_one({"key": key}) is not None:
            raise ValidationError(f"account {user_id!r} already exists in {app_id!r}")
        salt = secrets.token_hex(8)
        self._accounts.insert_one(
            {
                "key": key,
                "app_id": app_id,
                "user_id": user_id,
                "role": role.value,
                "salt": salt,
                "password_hash": _hash_password(password, salt),
                "active": True,
            }
        )
        return Account(app_id=app_id, user_id=user_id, role=role)

    def remove_account(self, app_id: str, user_id: str) -> None:
        """Delete an account."""
        deleted = self._accounts.delete_one({"key": self._key(app_id, user_id)})
        if deleted == 0:
            raise NotFoundError(f"no account {user_id!r} in app {app_id!r}")

    def deactivate_account(self, app_id: str, user_id: str) -> None:
        """Deactivate without deleting (keeps contribution attribution)."""
        result = self._accounts.update_one(
            {"key": self._key(app_id, user_id)}, {"$set": {"active": False}}
        )
        if result.matched == 0:
            raise NotFoundError(f"no account {user_id!r} in app {app_id!r}")

    def set_role(self, app_id: str, user_id: str, role: Role) -> None:
        """Change an account's role."""
        result = self._accounts.update_one(
            {"key": self._key(app_id, user_id)}, {"$set": {"role": role.value}}
        )
        if result.matched == 0:
            raise NotFoundError(f"no account {user_id!r} in app {app_id!r}")

    def get_account(self, app_id: str, user_id: str) -> Account:
        """Look up an account."""
        doc = self._accounts.find_one({"key": self._key(app_id, user_id)})
        if doc is None:
            raise NotFoundError(f"no account {user_id!r} in app {app_id!r}")
        return Account(
            app_id=doc["app_id"],
            user_id=doc["user_id"],
            role=Role(doc["role"]),
            active=doc["active"],
        )

    def accounts_for_app(self, app_id: str) -> List[Account]:
        """All accounts of an app."""
        self._require_app(app_id)
        return [
            Account(
                app_id=doc["app_id"],
                user_id=doc["user_id"],
                role=Role(doc["role"]),
                active=doc["active"],
            )
            for doc in self._accounts.find({"app_id": app_id})
        ]

    # -- authentication ------------------------------------------------------------

    def verify_credentials(self, app_id: str, user_id: str, password: str) -> Account:
        """Check credentials; returns the account or raises."""
        doc = self._accounts.find_one({"key": self._key(app_id, user_id)})
        if doc is None:
            raise AuthenticationError("unknown account")
        if not doc["active"]:
            raise AuthenticationError("account is deactivated")
        if _hash_password(password, doc["salt"]) != doc["password_hash"]:
            raise AuthenticationError("bad password")
        return Account(
            app_id=doc["app_id"], user_id=doc["user_id"], role=Role(doc["role"])
        )

    def require_role(self, app_id: str, user_id: str, minimum: Role) -> None:
        """Raise :class:`AuthorizationError` unless the account has ``minimum``."""
        account = self.get_account(app_id, user_id)
        if not account.active or not account.role.at_least(minimum):
            raise AuthorizationError(
                f"{user_id!r} lacks role {minimum.value!r} in app {app_id!r}"
            )
