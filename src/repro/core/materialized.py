"""Incrementally materialized analytics counters.

The figure queries behind ``AnalyticsEngine.totals``,
``per_model_table``, ``cumulative_by_day`` and ``provider_shares`` are
pure folds over the observations collection: each ingested document
contributes O(1) to every counter. Rather than re-scanning 23M
observations per dashboard refresh, :class:`MaterializedAnalytics`
maintains those folds online — ``DataManager.ingest`` calls
:meth:`observe` after every successful insert — and the analytics
engine consults them with a verified fallback to the full pipeline.

Correctness protocol (the counters must agree *exactly* with a full
pipeline recomputation at all times):

- **Marker.** The view remembers the collection's lifetime
  ``(inserts, updates, deletes)`` counters at the moment it was last
  consistent. ``observe`` applies a document incrementally only when
  the live counters are exactly one insert ahead of the marker —
  any other movement (retention deletes, contributor erasure, direct
  inserts that bypassed ingest, updates) means writes happened that
  the view did not see, and the view silently goes *dirty*.
- **Lazy rebuild.** A dirty view rebuilds from a single pass over the
  live documents on the next query, then resumes incremental updates.
  Deletes therefore invalidate rather than decrement: a decrement
  would need the deleted document's content, which the collection no
  longer has.
- **Degraded fields.** The pipeline semantics the counters mirror can
  reject a document (``$divide`` on a boolean ``taken_at``) or hit an
  unhashable value the cheap fold cannot bucket. Those mark the
  affected view degraded; its query method returns None and the
  engine falls back to the pipeline, which raises (or copes) exactly
  as it did before this optimisation existed.

Mirrored pipeline semantics, for the record:

- ``totals.localized`` counts ``{"location": {"$exists": True}}`` —
  key presence, even for ``None``/empty values;
- per-model ``localized`` is ``$cond [$ifNull [$location, False]]`` —
  *truthiness*, so ``location: {}`` is present-but-not-localized;
- ``day`` is ``$floor ($divide [$taken_at, 86400])`` where a missing
  or ``None`` ``taken_at`` coerces to 0;
- provider groups use ``location.provider`` with missing → ``None``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Set, Tuple

from repro import concurrency
from repro.docstore.aggregate import _safe_group_key
from repro.docstore.query import get_path, is_missing


class _ModelEntry:
    """The per-model fold: measurements, distinct devices, localized."""

    __slots__ = ("value", "measurements", "contributors", "localized")

    def __init__(self, value: Any) -> None:
        self.value = value
        self.measurements = 0
        self.contributors: Set[Any] = set()
        self.localized = 0


class MaterializedAnalytics:
    """Online per-model / per-day / per-provider observation counters."""

    def __init__(self, collection) -> None:
        self._collection = collection
        #: serializes observe/rebuild/query; acquired *before* the
        #: collection's RW lock, never after (lock hierarchy).
        self._lock = concurrency.make_rlock()
        self._marker: Optional[Tuple[int, int, int]] = None
        self._total = 0
        self._localized = 0
        self._models: Dict[Any, _ModelEntry] = {}
        self._days: Dict[Any, int] = {}
        self._providers: Dict[Any, List[Any]] = {}  # key -> [value, count]
        self._degraded_models = False
        self._degraded_days = False
        #: batch-ingested documents accepted (marker verified) but not
        #: yet folded — the batch write path stays O(1) per document
        #: and the next analytics read drains the tail.
        self._pending: List[Dict[str, Any]] = []
        # observability
        self.rebuilds = 0
        self.incremental_updates = 0
        self.invalidations = 0
        with self._lock:
            self._rebuild()

    # -- write side -----------------------------------------------------------

    def observe(self, document: Dict[str, Any]) -> None:
        """Fold one just-inserted document into the counters.

        Call immediately after a successful ``insert_one``. The fold is
        applied only when the collection's write counters moved by
        exactly that one insert since the view was last consistent;
        otherwise the view goes dirty and rebuilds on the next query.
        """
        with self._lock:
            marker = self._live_marker()
            prev = self._marker
            if prev is None or marker != (prev[0] + 1, prev[1], prev[2]):
                if prev is not None:
                    self.invalidations += 1
                self._marker = None
                self._pending = []
                return
            # buffered, not folded: documents must reach _apply in
            # insertion order (group first-seen order depends on it),
            # so the single-insert path shares the batch path's queue.
            self._pending.append(document)
            self._marker = marker
            self.incremental_updates += 1

    def observe_batch(self, documents: List[Dict[str, Any]]) -> None:
        """Fold a just-inserted batch into the counters.

        The batch-insert path bumps the collection's write marker once,
        by the batch size — so the incremental fold applies only when
        the live counters are exactly ``len(documents)`` inserts ahead
        of the marker; any other movement dirties the view as usual.
        The fold itself is deferred: the accepted documents go to a
        pending buffer (keeping the batch ingest path O(1) per
        document) and the next analytics read drains them.
        """
        if not documents:
            return
        with self._lock:
            marker = self._live_marker()
            prev = self._marker
            expected = (prev[0] + len(documents), prev[1], prev[2]) if prev else None
            if expected is None or marker != expected:
                if prev is not None:
                    self.invalidations += 1
                self._marker = None
                self._pending = []
                return
            self._pending.extend(documents)
            self._marker = marker
            self.incremental_updates += len(documents)

    # -- read side ------------------------------------------------------------

    def totals(self) -> Optional[Dict[str, int]]:
        """``{"total", "localized"}`` counts, or None when unavailable."""
        with self._lock:
            self._ensure_fresh()
            return {"total": self._total, "localized": self._localized}

    def per_model_groups(self) -> Optional[List[Dict[str, Any]]]:
        """Per-model groups in first-seen order, or None when degraded.

        Rows are ``{"_id": model, "measurements", "devices",
        "localized"}`` — the ``$group`` output with the contributor set
        already collapsed to its size.
        """
        with self._lock:
            self._ensure_fresh()
            if self._degraded_models:
                return None
            return [
                {
                    "_id": entry.value,
                    "measurements": entry.measurements,
                    "devices": len(entry.contributors),
                    "localized": entry.localized,
                }
                for entry in self._models.values()
            ]

    def model_entries(
        self,
    ) -> Optional[List[Tuple[Any, int, set, int]]]:
        """Raw per-model state for cross-shard merging, or None.

        Rows are ``(model, measurements, contributors, localized)``
        with the contributor *set* intact — distinct-device counts are
        not additive across partitions, so a shard coordinator needs
        the sets to union before collapsing them to sizes.
        """
        with self._lock:
            self._ensure_fresh()
            if self._degraded_models:
                return None
            return [
                (
                    entry.value,
                    entry.measurements,
                    set(entry.contributors),
                    entry.localized,
                )
                for entry in self._models.values()
            ]

    def day_counts(self) -> Optional[List[Dict[str, Any]]]:
        """``{"_id": day, "count"}`` rows sorted by day, or None."""
        with self._lock:
            self._ensure_fresh()
            if self._degraded_days:
                return None
            return [
                {"_id": day, "count": count}
                for day, count in sorted(self._days.items())
            ]

    def provider_counts(self) -> Optional[List[Dict[str, Any]]]:
        """``{"_id": provider, "count"}`` rows in first-seen order."""
        with self._lock:
            self._ensure_fresh()
            return [
                {"_id": value, "count": count}
                for value, count in self._providers.values()
            ]

    def info(self) -> Dict[str, Any]:
        """Observability snapshot for the middleware stats endpoint."""
        with self._lock:
            return {
                "fresh": self._marker == self._live_marker(),
                "rebuilds": self.rebuilds,
                "incremental_updates": self.incremental_updates,
                "invalidations": self.invalidations,
                "degraded": self._degraded_models or self._degraded_days,
            }

    # -- internals ------------------------------------------------------------

    def _live_marker(self) -> Tuple[int, int, int]:
        return self._collection.write_marker()

    def _ensure_fresh(self) -> None:
        if self._marker != self._live_marker():
            self._rebuild()
        elif self._pending:
            for document in self._pending:
                self._apply(document)
            self._pending = []

    def _rebuild(self) -> None:
        # marker and document snapshot must come from *one* atomic look
        # at the collection: a write landing between reading the
        # counters and listing the documents would let the view claim
        # freshness for a document it never folded (or fold one twice
        # when observe() later replays it).
        with self._collection.read_locked():
            marker = self._live_marker()
            documents = self._collection.iter_documents()
        self._total = 0
        self._localized = 0
        self._models = {}
        self._days = {}
        self._providers = {}
        self._degraded_models = False
        self._degraded_days = False
        self._pending = []
        for document in documents:
            self._apply(document)
        self._marker = marker
        self.rebuilds += 1

    def _apply(self, doc: Dict[str, Any]) -> None:
        self._total += 1

        model = doc.get("model")
        entry = self._models.get(_safe_group_key(model))
        if entry is None:
            entry = self._models[_safe_group_key(model)] = _ModelEntry(model)
        entry.measurements += 1
        try:
            entry.contributors.add(doc.get("contributor"))
        except TypeError:
            self._degraded_models = True
        if doc.get("location"):
            entry.localized += 1

        if "location" in doc:
            self._localized += 1
            provider = get_path(doc, "location.provider")
            if is_missing(provider):
                provider = None
            bucket = self._providers.get(_safe_group_key(provider))
            if bucket is None:
                self._providers[_safe_group_key(provider)] = [provider, 1]
            else:
                bucket[1] += 1

        taken = doc.get("taken_at")
        if taken is None:
            taken = 0
        if isinstance(taken, bool) or not isinstance(taken, (int, float)):
            self._degraded_days = True
        else:
            day = math.floor(taken / 86400)
            self._days[day] = self._days.get(day, 0) + 1
