"""GoFlow middleware errors."""

from __future__ import annotations

from repro.errors import ReproError


class GoFlowError(ReproError):
    """Base class for middleware errors."""


class AuthenticationError(GoFlowError):
    """Bad credentials or invalid/expired token."""


class AuthorizationError(GoFlowError):
    """The authenticated principal lacks the required role."""


class NotFoundError(GoFlowError):
    """A referenced entity (app, user, job, route) does not exist."""


class ValidationError(GoFlowError):
    """A request payload failed validation."""
