"""The on-phone sensing stack.

Implements the sensor models behind the paper's §5-§6 analyses:

- :mod:`repro.sensing.location` — the Android location sources (GPS,
  network, fused) with per-source accuracy distributions (Figs. 10-13)
  and per-mode provider selection (Fig. 20);
- :mod:`repro.sensing.microphone` — the microphone chain: true exposure
  level -> per-model response -> reported dB(A) (Figs. 14-15);
- :mod:`repro.sensing.activity` — activity recognition with a
  confidence threshold (Fig. 21's 80 % cutoff);
- :mod:`repro.sensing.modes` / :mod:`repro.sensing.scheduler` — the
  three SoundCity experiences: opportunistic background sensing, the
  "sense now" manual mode, and the participatory Journey mode.
"""

from repro.sensing.location import (
    LocationFix,
    LocationModel,
    PROVIDER_FUSED,
    PROVIDER_GPS,
    PROVIDER_NETWORK,
    ProviderMix,
)
from repro.sensing.microphone import Microphone, NoiseReading
from repro.sensing.activity import (
    ACTIVITIES,
    ActivityRecognizer,
    ActivityReading,
    CONFIDENCE_THRESHOLD,
)
from repro.sensing.modes import SensingMode
from repro.sensing.piggyback import (
    AppSession,
    AppSessionModel,
    PiggybackPlan,
    PiggybackScheduler,
)
from repro.sensing.scheduler import Observation, PhoneContext, SensingScheduler

__all__ = [
    "ACTIVITIES",
    "ActivityReading",
    "ActivityRecognizer",
    "AppSession",
    "AppSessionModel",
    "PiggybackPlan",
    "PiggybackScheduler",
    "CONFIDENCE_THRESHOLD",
    "LocationFix",
    "LocationModel",
    "Microphone",
    "NoiseReading",
    "Observation",
    "PhoneContext",
    "PROVIDER_FUSED",
    "PROVIDER_GPS",
    "PROVIDER_NETWORK",
    "ProviderMix",
    "SensingMode",
    "SensingScheduler",
]
