"""Microphone sensing: from true exposure to a reported dB(A) value.

The measurement chain has two layers:

1. the **fast path** used by fleet simulations: the true level comes
   from the :class:`~repro.noise.soundscape.Soundscape` mixture and the
   phone-model response (gain/offset/floor/clip) maps it to the reported
   value — this is what shifts each model's Figure 14 peak;
2. the **acoustic path** used by tests and examples: synthesize a
   waveform at the true level, A-weight it, compute the SPL, then apply
   the response — proving the fast path agrees with the full chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.devices.models import PhoneModel
from repro.noise.soundscape import Soundscape
from repro.noise.spl import spl_dba


@dataclass(frozen=True)
class NoiseReading:
    """One microphone measurement.

    Attributes:
        measured_dba: the value the device reports (what the server
            stores, and what Figs. 14-15 histogram).
        true_dba: ground-truth exposure (simulation only).
    """

    measured_dba: float
    true_dba: float


class Microphone:
    """The microphone of one device."""

    def __init__(self, model: PhoneModel, soundscape: Optional[Soundscape] = None) -> None:
        self.model = model
        self.soundscape = soundscape or Soundscape()

    def sample(
        self,
        rng: np.random.Generator,
        hour_of_day: float,
        activity: str = "still",
        x_m: "float | None" = None,
        y_m: "float | None" = None,
    ) -> NoiseReading:
        """Fast-path measurement at the given time/activity context.

        ``x_m``/``y_m`` let spatially grounded soundscapes (the
        city-field model) resolve the local level; the default mixture
        ignores them.
        """
        true_dba = self.soundscape.true_level_db(
            rng, hour_of_day, activity, x_m=x_m, y_m=y_m
        )
        measured = self.model.mic.apply(true_dba, noise=rng.standard_normal())
        return NoiseReading(measured_dba=float(measured), true_dba=float(true_dba))

    def sample_acoustic(
        self,
        rng: np.random.Generator,
        hour_of_day: float,
        activity: str = "still",
        duration_s: float = 1.0,
        sample_rate_hz: float = 8000.0,
    ) -> NoiseReading:
        """Full-chain measurement through waveform synthesis.

        Synthesizes a waveform at the drawn true level, measures its
        A-weighted SPL, then applies the device response to that
        measured SPL — the same pipeline a real phone runs, minus the
        ADC.
        """
        true_dba = self.soundscape.true_level_db(rng, hour_of_day, activity)
        waveform, rate = self.soundscape.synthesize_waveform(
            rng, true_dba, duration_s=duration_s, sample_rate_hz=sample_rate_hz
        )
        acoustic_dba = spl_dba(waveform, rate)
        measured = self.model.mic.apply(acoustic_dba, noise=rng.standard_normal())
        return NoiseReading(measured_dba=float(measured), true_dba=float(true_dba))
