"""Piggyback sensing (§2, ref [22] — Lane et al., SenSys'13).

"Piggybacking crowdsensing is an effective solution because it
coordinates with the relevant application activities": instead of waking
the device on a fixed period, measurements ride on moments when the
phone is already awake for the user (app sessions, screen-on events),
so the sensing itself pays no wake-up energy.

- :class:`AppSessionModel` — when the user's phone is already awake:
  session arrivals follow the diurnal profile, session lengths are
  lognormal (short checks, occasional long sessions);
- :class:`PiggybackScheduler` — samples only inside app sessions (at
  most one measurement per ``min_spacing_s``), paying reduced energy
  per sample (no device wake-up).

The energy accounting difference vs periodic sensing: a periodic
background sample must wake the device (wake cost + sensor cost); a
piggybacked sample only pays the sensor cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.crowd.diurnal import DiurnalProfile
from repro.errors import ConfigurationError

SECONDS_PER_DAY = 86400.0
SECONDS_PER_HOUR = 3600.0

#: Energy a periodic background sample pays to wake the device (J).
DEVICE_WAKE_J = 1.2


@dataclass(frozen=True)
class AppSession:
    """One interval during which the phone is awake for the user."""

    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class AppSessionModel:
    """Draws a user's app sessions over a horizon.

    Session arrivals are an inhomogeneous Poisson process whose hourly
    rate follows the user's diurnal profile; durations are lognormal
    (median ~90 s with a heavy tail for the long evening scroll).
    """

    def __init__(
        self,
        profile: DiurnalProfile,
        rng: np.random.Generator,
        sessions_per_active_hour: float = 4.0,
        median_duration_s: float = 90.0,
        duration_sigma: float = 1.0,
    ) -> None:
        if sessions_per_active_hour <= 0:
            raise ConfigurationError("session rate must be > 0")
        if median_duration_s <= 0:
            raise ConfigurationError("median duration must be > 0")
        self.profile = profile
        self._rng = rng
        self.rate = sessions_per_active_hour
        self.median_duration_s = median_duration_s
        self.duration_sigma = duration_sigma

    def sessions(self, start_s: float, end_s: float) -> List[AppSession]:
        """All app sessions in [start_s, end_s), time-ordered."""
        if end_s <= start_s:
            raise ConfigurationError("end must be after start")
        sessions: List[AppSession] = []
        hour_start = float(np.floor(start_s / SECONDS_PER_HOUR)) * SECONDS_PER_HOUR
        t = hour_start
        while t < end_s:
            hour_of_day = (t % SECONDS_PER_DAY) / SECONDS_PER_HOUR
            availability = self.profile.availability(hour_of_day)
            expected = self.rate * availability
            count = int(self._rng.poisson(expected))
            for _ in range(count):
                session_start = t + float(self._rng.uniform(0, SECONDS_PER_HOUR))
                duration = float(
                    self._rng.lognormal(
                        np.log(self.median_duration_s), self.duration_sigma
                    )
                )
                if session_start < start_s or session_start >= end_s:
                    continue
                sessions.append(
                    AppSession(
                        start_s=session_start,
                        end_s=min(session_start + duration, end_s),
                    )
                )
            t += SECONDS_PER_HOUR
        sessions.sort(key=lambda session: session.start_s)
        return sessions


@dataclass
class PiggybackPlan:
    """The sampling opportunities a scheduler extracted."""

    sample_times: List[float]
    sessions_used: int
    energy_j: float


class PiggybackScheduler:
    """Plans measurements inside app sessions.

    Args:
        min_spacing_s: no two samples closer than this (sensing more
            often than the phenomenon changes wastes energy).
        sample_cost_j: sensor+CPU cost of one measurement.
    """

    def __init__(
        self, min_spacing_s: float = 300.0, sample_cost_j: float = 0.85
    ) -> None:
        if min_spacing_s <= 0 or sample_cost_j <= 0:
            raise ConfigurationError("spacing and cost must be > 0")
        self.min_spacing_s = min_spacing_s
        self.sample_cost_j = sample_cost_j

    def plan(self, sessions: List[AppSession]) -> PiggybackPlan:
        """Sample times riding the given sessions (no wake-up energy)."""
        times: List[float] = []
        used = 0
        last: Optional[float] = None
        for session in sessions:
            t = session.start_s
            session_sampled = False
            while t <= session.end_s:
                if last is None or t - last >= self.min_spacing_s:
                    times.append(t)
                    last = t
                    session_sampled = True
                    t += self.min_spacing_s
                else:
                    t = last + self.min_spacing_s
            if session_sampled:
                used += 1
        return PiggybackPlan(
            sample_times=times,
            sessions_used=used,
            energy_j=len(times) * self.sample_cost_j,
        )

    def periodic_equivalent(
        self, start_s: float, end_s: float, period_s: float = 300.0
    ) -> PiggybackPlan:
        """The periodic baseline over the same horizon (pays wake-ups)."""
        if period_s <= 0:
            raise ConfigurationError("period must be > 0")
        times = list(np.arange(start_s, end_s, period_s))
        return PiggybackPlan(
            sample_times=[float(t) for t in times],
            sessions_used=0,
            energy_j=len(times) * (self.sample_cost_j + DEVICE_WAKE_J),
        )
