"""Location sensing: providers, accuracy, and availability.

§5.1: "Today's OSes (Android in our study) offer the following location
sources: GPS, network, and fused". The paper's findings this module
reproduces:

- only ~40 % of observations are localized at all (per-model rates come
  straight from Figure 9's localized/measurement ratios);
- of localized observations, ~86 % are network fixes, ~7 % GPS, ~7 %
  fused (Figs. 11-13);
- GPS accuracy concentrates in 6-20 m, network in 20-50 m with a
  secondary peak just under 100 m, fused is rare and coarse;
- participatory modes shift the mix toward GPS: +20 % in manual mode,
  +40 % in journey mode (Fig. 20).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.devices.models import PhoneModel
from repro.sensing.modes import SensingMode

PROVIDER_GPS = "gps"
PROVIDER_NETWORK = "network"
PROVIDER_FUSED = "fused"

_PROVIDERS = (PROVIDER_GPS, PROVIDER_NETWORK, PROVIDER_FUSED)


@dataclass(frozen=True)
class ProviderMix:
    """Probability of each provider, conditional on a fix happening."""

    gps: float
    network: float
    fused: float

    def __post_init__(self) -> None:
        total = self.gps + self.network + self.fused
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(f"provider mix must sum to 1, got {total}")
        if min(self.gps, self.network, self.fused) < 0:
            raise ConfigurationError("provider shares must be >= 0")

    def without_fused(self) -> "ProviderMix":
        """The mix for models that expose no fused provider.

        The fused share folds into network (the OS falls back to the
        network source when Play-services fusion is unavailable).
        """
        return ProviderMix(
            gps=self.gps, network=self.network + self.fused, fused=0.0
        )

    def as_tuple(self) -> Tuple[float, float, float]:
        return (self.gps, self.network, self.fused)


#: Provider mixes per sensing mode, calibrated to Figure 20: the
#: opportunistic mix dominates overall volume and yields the paper's
#: 86/7/7 split; manual raises GPS by ~20 points and journey by ~40.
DEFAULT_PROVIDER_MIXES: Dict[SensingMode, ProviderMix] = {
    SensingMode.OPPORTUNISTIC: ProviderMix(gps=0.06, network=0.845, fused=0.095),
    SensingMode.MANUAL: ProviderMix(gps=0.27, network=0.63, fused=0.10),
    SensingMode.JOURNEY: ProviderMix(gps=0.47, network=0.45, fused=0.08),
}


@dataclass(frozen=True)
class LocationFix:
    """One location reading as Android reports it.

    Attributes:
        provider: 'gps' / 'network' / 'fused'.
        accuracy_m: the OS-estimated 68 %-confidence radius in meters —
            this (not the true error) is what Figs. 10-13 histogram.
        x_m / y_m: reported position in city coordinates (meters).
        true_x_m / true_y_m: ground-truth position (simulation only;
            never serialized to the server).
    """

    provider: str
    accuracy_m: float
    x_m: float
    y_m: float
    true_x_m: float
    true_y_m: float

    @property
    def error_m(self) -> float:
        """Actual position error (ground truth, for assimilation studies)."""
        return float(
            np.hypot(self.x_m - self.true_x_m, self.y_m - self.true_y_m)
        )


class LocationModel:
    """Samples location availability, provider, and accuracy."""

    def __init__(
        self,
        mixes: Optional[Dict[SensingMode, ProviderMix]] = None,
    ) -> None:
        self._mixes = dict(DEFAULT_PROVIDER_MIXES)
        if mixes:
            self._mixes.update(mixes)
        for mode in SensingMode:
            if mode not in self._mixes:
                raise ConfigurationError(f"missing provider mix for {mode}")

    def mix_for(self, mode: SensingMode, model: PhoneModel) -> ProviderMix:
        """The provider mix for ``mode`` on ``model``."""
        mix = self._mixes[mode]
        if not model.has_fused_provider:
            mix = mix.without_fused()
        return mix

    def fix_available(
        self, rng: np.random.Generator, model: PhoneModel, mode: SensingMode
    ) -> bool:
        """Whether this observation gets a location at all.

        Opportunistic availability is the model's Figure 9 localized
        share; participatory modes wake the location stack explicitly,
        so fixes nearly always succeed.
        """
        if mode is SensingMode.OPPORTUNISTIC:
            return bool(rng.random() < model.localized_share)
        return bool(rng.random() < 0.95)

    def sample_provider(
        self, rng: np.random.Generator, model: PhoneModel, mode: SensingMode
    ) -> str:
        """Draw the provider of a successful fix."""
        mix = self.mix_for(mode, model)
        return str(rng.choice(_PROVIDERS, p=mix.as_tuple()))

    def sample_accuracy_m(self, rng: np.random.Generator, provider: str) -> float:
        """Draw the OS-reported accuracy estimate for ``provider``.

        GPS: lognormal, median ~12 m, bulk in 6-20 m (Fig. 11).
        Network: 72 % lognormal median ~33 m (the 20-50 m bulk), 22 %
        cell-tower fallback peaking just under 100 m, 6 % coarse tail
        (Fig. 12, and the <100 m secondary peak of Fig. 10).
        Fused: coarse lognormal, median ~120 m (Fig. 13: "rather low").
        """
        if provider == PROVIDER_GPS:
            accuracy = rng.lognormal(mean=np.log(12.0), sigma=0.45)
        elif provider == PROVIDER_NETWORK:
            u = rng.random()
            if u < 0.72:
                accuracy = rng.lognormal(mean=np.log(33.0), sigma=0.30)
            elif u < 0.94:
                accuracy = rng.normal(90.0, 6.0)
            else:
                accuracy = rng.lognormal(mean=np.log(300.0), sigma=0.60)
        elif provider == PROVIDER_FUSED:
            accuracy = rng.lognormal(mean=np.log(120.0), sigma=0.80)
        else:
            raise ConfigurationError(f"unknown provider {provider!r}")
        return float(np.clip(accuracy, 2.0, 3000.0))

    def sample_fix(
        self,
        rng: np.random.Generator,
        model: PhoneModel,
        mode: SensingMode,
        true_x_m: float,
        true_y_m: float,
    ) -> Optional[LocationFix]:
        """Full fix draw: availability, provider, accuracy, position.

        Returns None when no location is available (the ~60 % of
        observations the paper discards for mapping purposes). The
        reported position deviates from the truth by a 2-D Gaussian
        whose standard deviation is accuracy/1.515 (so the accuracy
        radius is the 68th percentile of the error, matching Android's
        definition of the accuracy field).
        """
        if not self.fix_available(rng, model, mode):
            return None
        provider = self.sample_provider(rng, model, mode)
        accuracy = self.sample_accuracy_m(rng, provider)
        # For a 2-D Gaussian, P(error < 1.515 sigma) ~= 0.68.
        sigma = accuracy / 1.515
        dx, dy = rng.normal(0.0, sigma, size=2)
        return LocationFix(
            provider=provider,
            accuracy_m=accuracy,
            x_m=true_x_m + dx,
            y_m=true_y_m + dy,
            true_x_m=true_x_m,
            true_y_m=true_y_m,
        )
