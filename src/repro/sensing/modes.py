"""Sensing modes.

§4.2: SoundCity supports three experiences — default opportunistic
background sensing every 5 minutes, a manual "sense now" button, and the
participatory Journey mode where the user chooses the frequency along a
path. §6.2 compares the location quality they yield.
"""

from __future__ import annotations

import enum


class SensingMode(enum.Enum):
    """How a measurement was initiated."""

    OPPORTUNISTIC = "opportunistic"
    MANUAL = "manual"
    JOURNEY = "journey"

    @property
    def is_participatory(self) -> bool:
        """Whether the user consciously initiated the measurement."""
        return self is not SensingMode.OPPORTUNISTIC


#: The default background sensing period (§5.3: "every 5 min by default").
DEFAULT_OPPORTUNISTIC_PERIOD_S = 300.0

#: Default number of observations buffered by the v1.3 client before an
#: uplink ("buffers a series of 10 measurements ... hence every 50 min").
DEFAULT_BUFFER_SIZE = 10
