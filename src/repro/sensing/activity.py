"""Activity recognition.

Figure 21 histograms the Android activity labels attached to SoundCity
observations: ``undefined, unknown, tilting, still, foot, bicycle,
vehicle``. The paper reports that "the activity cannot be characterized
for 20 % of the time (i.e., the accuracy confidence is less than 80 %)"
and that users are still ~70 % of the time and moving <10 %.

The recognizer consumes the mobility model's ground-truth state and
emits a (label, confidence) pair; labels with confidence below the 80 %
threshold are reported as ``unknown`` (recognized but uncertain) or
``undefined`` (no recognition result at all).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.errors import ConfigurationError

#: Every label that can appear on an observation, in Figure 21's order.
ACTIVITIES = ("undefined", "unknown", "tilting", "still", "foot", "bicycle", "vehicle")

#: Ground-truth states the mobility model produces.
TRUE_ACTIVITIES = ("still", "foot", "bicycle", "vehicle", "tilting")

#: The paper's qualification threshold.
CONFIDENCE_THRESHOLD = 0.80


@dataclass(frozen=True)
class ActivityReading:
    """One recognizer output: the label stored with an observation."""

    label: str
    confidence: float
    true_activity: str

    @property
    def qualified(self) -> bool:
        """Whether the label passed the 80 % confidence bar."""
        return self.label not in ("undefined", "unknown")


class ActivityRecognizer:
    """Simulated Google-Play-services activity recognition.

    Args:
        misclassify_rate: probability a confident output picks a wrong
            (adjacent) label.
        low_confidence_rate: probability the recognizer is unsure, which
            yields 'unknown' (or 'undefined' when no sample could be
            taken at all).
        undefined_rate: probability the recognition result is missing
            entirely.
    """

    def __init__(
        self,
        misclassify_rate: float = 0.03,
        low_confidence_rate: float = 0.13,
        undefined_rate: float = 0.07,
    ) -> None:
        for name, rate in (
            ("misclassify_rate", misclassify_rate),
            ("low_confidence_rate", low_confidence_rate),
            ("undefined_rate", undefined_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {rate}")
        if low_confidence_rate + undefined_rate >= 1.0:
            raise ConfigurationError("unqualified rates must sum below 1")
        self.misclassify_rate = misclassify_rate
        self.low_confidence_rate = low_confidence_rate
        self.undefined_rate = undefined_rate

    def recognize(
        self, rng: np.random.Generator, true_activity: str
    ) -> ActivityReading:
        """One recognition of ``true_activity``."""
        if true_activity not in TRUE_ACTIVITIES:
            raise ConfigurationError(f"unknown true activity {true_activity!r}")
        u = rng.random()
        if u < self.undefined_rate:
            return ActivityReading(
                label="undefined", confidence=0.0, true_activity=true_activity
            )
        if u < self.undefined_rate + self.low_confidence_rate:
            confidence = float(rng.uniform(0.3, CONFIDENCE_THRESHOLD))
            return ActivityReading(
                label="unknown", confidence=confidence, true_activity=true_activity
            )
        label = true_activity
        if rng.random() < self.misclassify_rate:
            others = [a for a in TRUE_ACTIVITIES if a != true_activity]
            label = str(rng.choice(others))
        confidence = float(rng.uniform(CONFIDENCE_THRESHOLD, 1.0))
        return ActivityReading(
            label=label, confidence=confidence, true_activity=true_activity
        )

    def distribution(
        self, rng: np.random.Generator, true_activities, n: int = 1
    ) -> Dict[str, float]:
        """Empirical label distribution over a list of true activities."""
        counts: Dict[str, int] = {label: 0 for label in ACTIVITIES}
        total = 0
        for activity in true_activities:
            for _ in range(n):
                reading = self.recognize(rng, activity)
                counts[reading.label] += 1
                total += 1
        if total == 0:
            raise ConfigurationError("distribution over no activities")
        return {label: counts[label] / total for label in ACTIVITIES}
