"""The sensing scheduler: producing observations on a phone.

Ties the sensors together. One :class:`SensingScheduler` runs per
simulated phone:

- an **opportunistic** periodic process fires every 5 minutes by
  default (§5.3) whenever the user's phone is awake for the app;
- **manual** measurements fire on demand ("sense now");
- **journey** sessions sample at a user-chosen frequency until stopped.

Each firing produces an :class:`Observation` — the unit of data the
whole middleware pipeline transports and analyzes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.devices.models import PhoneModel
from repro.sensing.activity import ActivityReading, ActivityRecognizer
from repro.sensing.location import LocationFix, LocationModel
from repro.sensing.microphone import Microphone, NoiseReading
from repro.sensing.modes import (
    DEFAULT_OPPORTUNISTIC_PERIOD_S,
    SensingMode,
)
from repro.simulation.engine import PeriodicProcess, Simulator

_observation_ids = itertools.count(1)


@dataclass
class Observation:
    """One crowd-sensed measurement, as produced on the phone."""

    observation_id: int
    user_id: str
    model: str
    taken_at: float
    mode: SensingMode
    noise: NoiseReading
    location: Optional[LocationFix]
    activity: ActivityReading

    @property
    def localized(self) -> bool:
        """Whether the observation carries a location."""
        return self.location is not None

    def to_document(self) -> Dict[str, Any]:
        """Serialize to the wire/storage document format.

        Ground-truth fields (true level, true position) are *not*
        serialized: the server only ever sees what a real deployment
        would see.
        """
        doc: Dict[str, Any] = {
            "observation_id": self.observation_id,
            "user_id": self.user_id,
            "model": self.model,
            "taken_at": self.taken_at,
            "mode": self.mode.value,
            "noise_dba": round(self.noise.measured_dba, 2),
            "activity": {
                "label": self.activity.label,
                "confidence": round(self.activity.confidence, 3),
            },
        }
        if self.location is not None:
            doc["location"] = {
                "provider": self.location.provider,
                "accuracy_m": round(self.location.accuracy_m, 1),
                "x_m": round(self.location.x_m, 1),
                "y_m": round(self.location.y_m, 1),
            }
        return doc


class SensingScheduler:
    """Produces observations for one phone.

    Args:
        simulator: the event loop driving the phone.
        user_id: owner of the phone.
        model: the phone's model (drives mic response & providers).
        context: a provider of the phone's dynamic state with
            ``position()`` -> (x, y), ``activity()`` -> str, and
            ``available(hour)`` -> bool (whether the app can sense now).
        on_observation: callback receiving every produced observation
            (the GoFlow client's enqueue method).
        rng: the phone's random stream.
    """

    def __init__(
        self,
        simulator: Simulator,
        user_id: str,
        model: PhoneModel,
        context: "PhoneContext",
        on_observation: Callable[[Observation], None],
        rng: np.random.Generator,
        location_model: Optional[LocationModel] = None,
        microphone: Optional[Microphone] = None,
        recognizer: Optional[ActivityRecognizer] = None,
        opportunistic_period_s: float = DEFAULT_OPPORTUNISTIC_PERIOD_S,
    ) -> None:
        if opportunistic_period_s <= 0:
            raise ConfigurationError("opportunistic period must be > 0")
        self._sim = simulator
        self.user_id = user_id
        self.model = model
        self._context = context
        self._emit = on_observation
        self._rng = rng
        self._locations = location_model or LocationModel()
        self._microphone = microphone or Microphone(model)
        self._recognizer = recognizer or ActivityRecognizer()
        self._opportunistic: Optional[PeriodicProcess] = None
        self._journey: Optional[PeriodicProcess] = None
        self._period = opportunistic_period_s
        self.produced = 0

    # -- opportunistic mode ---------------------------------------------------

    def start_opportunistic(self, until: Optional[float] = None) -> None:
        """Begin background sensing at the configured period."""
        if self._opportunistic is not None and not self._opportunistic.stopped:
            raise ConfigurationError("opportunistic sensing already running")
        self._opportunistic = PeriodicProcess(
            self._sim,
            self._period,
            self._opportunistic_tick,
            until=until,
            label=f"sense:{self.user_id}",
        )

    def stop_opportunistic(self) -> None:
        """Stop background sensing."""
        if self._opportunistic is not None:
            self._opportunistic.stop()

    def _opportunistic_tick(self, now: float) -> None:
        hour = (now % 86400.0) / 3600.0
        if not self._context.available(hour):
            return  # phone dozing / app killed / user opted out right now
        self._measure(SensingMode.OPPORTUNISTIC)

    # -- manual mode ---------------------------------------------------------

    def sense_now(self) -> Observation:
        """The home-page "sense now" button."""
        return self._measure(SensingMode.MANUAL)

    # -- journey mode -----------------------------------------------------------

    def start_journey(self, frequency_s: float, duration_s: float) -> None:
        """Begin a participatory journey sampling every ``frequency_s``."""
        if frequency_s <= 0 or duration_s <= 0:
            raise ConfigurationError("journey frequency and duration must be > 0")
        if self._journey is not None and not self._journey.stopped:
            raise ConfigurationError("a journey is already in progress")
        self._journey = PeriodicProcess(
            self._sim,
            frequency_s,
            lambda now: self._measure(SensingMode.JOURNEY),
            until=self._sim.now + duration_s,
            label=f"journey:{self.user_id}",
        )

    def stop_journey(self) -> None:
        """End the current journey early."""
        if self._journey is not None:
            self._journey.stop()

    # -- the measurement itself ----------------------------------------------------

    def _measure(self, mode: SensingMode) -> Observation:
        now = self._sim.now
        hour = (now % 86400.0) / 3600.0
        true_x, true_y = self._context.position()
        true_activity = self._context.activity()
        noise = self._microphone.sample(
            self._rng, hour, true_activity, x_m=true_x, y_m=true_y
        )
        location = self._locations.sample_fix(
            self._rng, self.model, mode, true_x, true_y
        )
        activity = self._recognizer.recognize(self._rng, true_activity)
        observation = Observation(
            observation_id=next(_observation_ids),
            user_id=self.user_id,
            model=self.model.name,
            taken_at=now,
            mode=mode,
            noise=noise,
            location=location,
            activity=activity,
        )
        self.produced += 1
        self._emit(observation)
        return observation


class PhoneContext:
    """Minimal duck-typed context; the crowd package provides real ones.

    This default keeps the phone at a fixed position, still, and always
    available — convenient for unit tests and the quickstart example.
    """

    def __init__(self, x_m: float = 0.0, y_m: float = 0.0) -> None:
        self._x = x_m
        self._y = y_m

    def position(self) -> tuple:
        """Current true position (meters)."""
        return (self._x, self._y)

    def activity(self) -> str:
        """Current true activity."""
        return "still"

    def available(self, hour_of_day: float) -> bool:
        """Whether the app can take a background sample right now."""
        return True
