"""City-grounded soundscape.

The plain :class:`~repro.noise.soundscape.Soundscape` is a *statistical*
model of exposure (the quiet/active mixture behind Figures 14-15). When
a campaign also feeds the data-assimilation engine, the exposure must be
*spatially* grounded: a phone at a loud crossroads hears the crossroads.

:class:`CitySoundscape` composes the two:

- the **outdoor level** at the phone's position comes from a
  :class:`~repro.assimilation.citymodel.CityNoiseModel` field;
- **context modulation**: a still phone is usually indoors or pocketed
  (building envelopes attenuate ~15-25 dB), a moving phone hears the
  street; nights are globally quieter (reduced traffic emission).

This keeps the per-model histogram shapes (quiet peak + active bump)
while making observations informative for BLUE.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.assimilation.citymodel import CityNoiseModel
from repro.errors import ConfigurationError
from repro.noise.soundscape import Soundscape, SoundscapeParams, _MOVING_ACTIVITIES


class CitySoundscape(Soundscape):
    """Exposure model grounded in a city noise field."""

    def __init__(
        self,
        city: CityNoiseModel,
        params: Optional[SoundscapeParams] = None,
        indoor_attenuation_db: float = 18.0,
        indoor_spread_db: float = 4.0,
        outdoor_spread_db: float = 2.0,
        night_traffic_drop_db: float = 6.0,
    ) -> None:
        super().__init__(params=params)
        if indoor_attenuation_db < 0:
            raise ConfigurationError("indoor attenuation must be >= 0")
        self.city = city
        self._field = city.simulate()
        self.indoor_attenuation_db = indoor_attenuation_db
        self.indoor_spread_db = indoor_spread_db
        self.outdoor_spread_db = outdoor_spread_db
        self.night_traffic_drop_db = night_traffic_drop_db

    def outdoor_level_db(self, x_m: float, y_m: float) -> float:
        """The city field at (x, y); positions outside the grid fall
        back to the field's mean (the user left the mapped area)."""
        if self.city.grid.contains(x_m, y_m):
            return self.city.level_at(x_m, y_m, field=self._field)
        return float(self._field.mean())

    def true_level_db(
        self,
        rng: np.random.Generator,
        hour_of_day: float,
        activity: str = "still",
        x_m: Optional[float] = None,
        y_m: Optional[float] = None,
    ) -> float:
        """Spatially grounded exposure draw.

        Without a position this degrades to the parent mixture (keeps
        the duck type total).
        """
        if x_m is None or y_m is None:
            return super().true_level_db(rng, hour_of_day, activity)
        outdoor = self.outdoor_level_db(x_m, y_m)
        if not self.is_daytime(hour_of_day):
            outdoor -= self.night_traffic_drop_db
        if activity in _MOVING_ACTIVITIES:
            level = outdoor + rng.normal(0.0, self.outdoor_spread_db)
        else:
            # still: indoors/pocket with probability 1 - active_share
            if rng.random() < self.active_probability(hour_of_day, activity):
                level = outdoor + rng.normal(0.0, self.outdoor_spread_db)
            else:
                level = (
                    outdoor
                    - self.indoor_attenuation_db
                    + rng.normal(0.0, self.indoor_spread_db)
                )
        return float(np.clip(level, 20.0, 110.0))
