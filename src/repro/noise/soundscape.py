"""Soundscapes: the true noise levels a phone is exposed to.

Figure 14 shows, for every model, "a first peak at the low noise levels
and then a small bump for active environments". That shape is a property
of *where phones are* when opportunistic sensing fires: most of the time
they sit in quiet indoor environments or pockets (the §6.3 analysis says
users are still ~70 % of the time), and occasionally they are out on the
street or in transit.

:class:`Soundscape` is that generative model: a two-component mixture of
quiet and active environments whose component means depend on the hour
of day (nights are quieter) and the user's current activity (moving
users are in louder places). It also synthesizes waveforms so the full
acoustic chain (waveform -> A-weighting -> SPL) is exercised end to end
in tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.noise.spl import REFERENCE_PRESSURE_PA


@dataclass(frozen=True)
class SoundscapeParams:
    """Parameters of the quiet/active mixture.

    Defaults produce the Figure 14 silhouette: a tall quiet peak near
    38 dB(A) and a shallow active bump near 66 dB(A), with ~25 % of
    opportunistic samples falling in active environments during the day.
    """

    quiet_mean_db: float = 38.0
    quiet_std_db: float = 5.0
    active_mean_db: float = 66.0
    active_std_db: float = 7.0
    active_share_day: float = 0.28
    active_share_night: float = 0.08
    night_attenuation_db: float = 6.0
    day_start_hour: float = 7.0
    day_end_hour: float = 22.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.active_share_day <= 1.0:
            raise ConfigurationError("active_share_day must be in [0, 1]")
        if not 0.0 <= self.active_share_night <= 1.0:
            raise ConfigurationError("active_share_night must be in [0, 1]")
        if self.quiet_std_db <= 0 or self.active_std_db <= 0:
            raise ConfigurationError("mixture stds must be > 0")


#: Activities that put the phone in louder environments.
_MOVING_ACTIVITIES = {"foot", "bicycle", "vehicle"}


class Soundscape:
    """Draws true dB(A) exposure levels and synthesizes waveforms."""

    def __init__(self, params: Optional[SoundscapeParams] = None) -> None:
        self.params = params or SoundscapeParams()

    def is_daytime(self, hour_of_day: float) -> bool:
        """Whether ``hour_of_day`` falls in the loud part of the day."""
        return self.params.day_start_hour <= hour_of_day < self.params.day_end_hour

    def active_probability(self, hour_of_day: float, activity: str = "still") -> float:
        """Probability the phone is in an active environment right now."""
        base = (
            self.params.active_share_day
            if self.is_daytime(hour_of_day)
            else self.params.active_share_night
        )
        if activity in _MOVING_ACTIVITIES:
            # a moving user is very likely outdoors / in transit
            return min(1.0, base + 0.6)
        return base

    def true_level_db(
        self,
        rng: np.random.Generator,
        hour_of_day: float,
        activity: str = "still",
        x_m: Optional[float] = None,
        y_m: Optional[float] = None,
    ) -> float:
        """Draw one true exposure level in dB(A).

        The base mixture is spatially homogeneous; ``x_m``/``y_m`` are
        accepted (and ignored) so city-grounded subclasses share the
        signature (see :class:`repro.noise.cityscape.CitySoundscape`).
        """
        params = self.params
        active = rng.random() < self.active_probability(hour_of_day, activity)
        if active:
            level = rng.normal(params.active_mean_db, params.active_std_db)
        else:
            level = rng.normal(params.quiet_mean_db, params.quiet_std_db)
        if not self.is_daytime(hour_of_day):
            level -= params.night_attenuation_db
        return float(np.clip(level, 20.0, 110.0))

    def true_levels_db(
        self,
        rng: np.random.Generator,
        hours_of_day: np.ndarray,
        activities: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Vectorized :meth:`true_level_db` for a batch of observations."""
        hours = np.asarray(hours_of_day, dtype=float)
        params = self.params
        day = (hours >= params.day_start_hour) & (hours < params.day_end_hour)
        p_active = np.where(day, params.active_share_day, params.active_share_night)
        if activities is not None:
            moving = np.isin(np.asarray(activities), sorted(_MOVING_ACTIVITIES))
            p_active = np.minimum(1.0, p_active + np.where(moving, 0.6, 0.0))
        active = rng.random(hours.shape) < p_active
        levels = np.where(
            active,
            rng.normal(params.active_mean_db, params.active_std_db, hours.shape),
            rng.normal(params.quiet_mean_db, params.quiet_std_db, hours.shape),
        )
        levels = levels - np.where(day, 0.0, params.night_attenuation_db)
        return np.clip(levels, 20.0, 110.0)

    # -- waveform synthesis --------------------------------------------------

    def synthesize_waveform(
        self,
        rng: np.random.Generator,
        target_dba: float,
        duration_s: float = 1.0,
        sample_rate_hz: float = 8000.0,
    ) -> Tuple[np.ndarray, float]:
        """A pressure waveform whose A-weighted SPL is ``target_dba``.

        The signal is pink-ish noise (1/f-shaped spectrum, typical of
        urban ambience) scaled so its A-weighted level hits the target.
        Returns (waveform, sample_rate).
        """
        if duration_s <= 0 or sample_rate_hz <= 0:
            raise ConfigurationError("duration and sample rate must be > 0")
        n = int(duration_s * sample_rate_hz)
        if n < 16:
            raise ConfigurationError("waveform too short; increase duration or rate")
        white = rng.standard_normal(n)
        spectrum = np.fft.rfft(white)
        frequencies = np.fft.rfftfreq(n, d=1.0 / sample_rate_hz)
        shaping = np.ones_like(frequencies)
        nonzero = frequencies > 0
        shaping[nonzero] = 1.0 / np.sqrt(frequencies[nonzero])
        shaping[0] = 0.0
        pink = np.fft.irfft(spectrum * shaping, n=n)

        from repro.noise.spl import spl_dba  # local import avoids cycle

        pink /= max(np.sqrt(np.mean(np.square(pink))), 1e-30)
        pink *= REFERENCE_PRESSURE_PA  # now roughly 0 dB unweighted
        current = spl_dba(pink, sample_rate_hz)
        gain = 10.0 ** ((target_dba - current) / 20.0)
        return pink * gain, sample_rate_hz
