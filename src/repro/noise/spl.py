"""Sound-pressure-level computation and dB arithmetic."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.noise.weighting import apply_a_weighting

#: 20 micro-pascal, the standard reference pressure in air.
REFERENCE_PRESSURE_PA = 20e-6


def spl_db(signal: np.ndarray) -> float:
    """Unweighted SPL (dB re 20 µPa) of a pressure waveform."""
    samples = np.asarray(signal, dtype=float)
    if samples.size == 0:
        raise ConfigurationError("cannot compute SPL of an empty signal")
    rms = float(np.sqrt(np.mean(np.square(samples))))
    if rms <= 0.0:
        return -np.inf
    return 20.0 * np.log10(rms / REFERENCE_PRESSURE_PA)


def spl_dba(signal: np.ndarray, sample_rate_hz: float) -> float:
    """A-weighted SPL (dB(A)) of a pressure waveform."""
    return spl_db(apply_a_weighting(signal, sample_rate_hz))


def leq(levels_db, durations_s=None) -> float:
    """Equivalent continuous level of a sequence of interval levels.

    ``Leq = 10 log10( sum(d_i 10^(L_i/10)) / sum(d_i) )`` — the
    energy-mean of dB values, which is how per-journey and daily
    exposure figures (SoundCity's quantified-self screens) aggregate.
    """
    levels = np.asarray(levels_db, dtype=float)
    if levels.size == 0:
        raise ConfigurationError("leq of an empty level sequence")
    if durations_s is None:
        weights = np.ones_like(levels)
    else:
        weights = np.asarray(durations_s, dtype=float)
        if weights.shape != levels.shape:
            raise ConfigurationError(
                f"durations shape {weights.shape} != levels shape {levels.shape}"
            )
        if np.any(weights <= 0):
            raise ConfigurationError("durations must be > 0")
    energy = np.sum(weights * np.power(10.0, levels / 10.0)) / np.sum(weights)
    return float(10.0 * np.log10(energy))


def db_add(*levels_db: float) -> float:
    """Incoherent sum of sound levels (energy addition).

    ``db_add(60, 60) == 63.01...`` — two equal sources add 3 dB. This is
    how the city model combines street and POI contributions.
    """
    if not levels_db:
        raise ConfigurationError("db_add requires at least one level")
    energies = np.power(10.0, np.asarray(levels_db, dtype=float) / 10.0)
    return float(10.0 * np.log10(np.sum(energies)))


def db_mean(levels_db) -> float:
    """Energy mean of levels (Leq with equal durations)."""
    return leq(levels_db)
