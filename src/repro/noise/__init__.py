"""Acoustics: A-weighting, sound-pressure levels, and soundscapes.

SoundCity "periodically measures, in the background, the sound levels
with the microphone of the device" and reports them in dB(A) (Figures
14-15). This package implements the measurement chain:

- :mod:`repro.noise.weighting` — the IEC 61672 A-weighting curve and a
  frequency-domain weighting filter;
- :mod:`repro.noise.spl` — SPL and equivalent level (Leq) computation
  from pressure waveforms, plus dB arithmetic helpers;
- :mod:`repro.noise.soundscape` — the generative model of *true* urban
  noise levels a phone is exposed to: a mixture of quiet (pocket,
  indoor, night) and active (street, transit) environments whose
  two-bump shape is what Figure 14 shows after each model's microphone
  response shifts it.
"""

from repro.noise.weighting import a_weighting_db, apply_a_weighting
from repro.noise.spl import (
    REFERENCE_PRESSURE_PA,
    db_add,
    db_mean,
    leq,
    spl_db,
    spl_dba,
)
from repro.noise.soundscape import Soundscape, SoundscapeParams
from repro.noise.cityscape import CitySoundscape

__all__ = [
    "REFERENCE_PRESSURE_PA",
    "CitySoundscape",
    "Soundscape",
    "SoundscapeParams",
    "a_weighting_db",
    "apply_a_weighting",
    "db_add",
    "db_mean",
    "leq",
    "spl_db",
    "spl_dba",
]
