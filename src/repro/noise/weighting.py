"""IEC 61672 A-weighting.

A-weighting models the loudness sensitivity of human hearing; every
noise level the paper reports is dB(A). The analytic weighting function

    R_A(f) = 12194^2 f^4 /
             ((f^2 + 20.6^2) sqrt((f^2 + 107.7^2)(f^2 + 737.9^2)) (f^2 + 12194^2))

is normalized to 0 dB at 1 kHz. :func:`apply_a_weighting` applies the
curve to a time-domain pressure signal via the real FFT.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

_F1 = 20.598997
_F2 = 107.65265
_F3 = 737.86223
_F4 = 12194.217


def _ra(frequency_hz: np.ndarray) -> np.ndarray:
    f2 = np.square(frequency_hz.astype(float))
    numerator = (_F4**2) * np.square(f2)
    denominator = (
        (f2 + _F1**2)
        * np.sqrt((f2 + _F2**2) * (f2 + _F3**2))
        * (f2 + _F4**2)
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(denominator > 0, numerator / denominator, 0.0)


def a_weighting_db(frequency_hz) -> np.ndarray:
    """A-weighting in dB at the given frequencies (0 dB at 1 kHz).

    Accepts a scalar or array; returns an array (scalar input gives a
    0-d array). DC maps to -inf weighting, which callers should expect.
    """
    frequencies = np.asarray(frequency_hz, dtype=float)
    if np.any(frequencies < 0):
        raise ConfigurationError("frequencies must be >= 0")
    ra = _ra(frequencies)
    ra_1k = _ra(np.asarray([1000.0]))[0]
    with np.errstate(divide="ignore"):
        return 20.0 * np.log10(ra / ra_1k)


def apply_a_weighting(signal: np.ndarray, sample_rate_hz: float) -> np.ndarray:
    """A-weight a pressure waveform in the frequency domain.

    Args:
        signal: 1-D pressure signal (Pa).
        sample_rate_hz: sampling rate.

    Returns:
        The weighted time-domain signal, same length as the input.
    """
    samples = np.asarray(signal, dtype=float)
    if samples.ndim != 1:
        raise ConfigurationError(f"signal must be 1-D, got shape {samples.shape}")
    if sample_rate_hz <= 0:
        raise ConfigurationError(f"sample rate must be > 0, got {sample_rate_hz}")
    spectrum = np.fft.rfft(samples)
    frequencies = np.fft.rfftfreq(len(samples), d=1.0 / sample_rate_hz)
    # R_A is the *amplitude* response (A(f) dB = 20 log10 R_A normalized
    # at 1 kHz), so it multiplies the spectrum directly.
    gains = _ra(frequencies) / _ra(np.asarray([1000.0]))[0]
    gains[frequencies == 0.0] = 0.0  # A-weighting suppresses DC entirely
    return np.fft.irfft(spectrum * gains, n=len(samples))
