"""The discrete-event simulation engine.

:class:`Simulator` owns a :class:`~repro.simulation.clock.SimClock` and an
:class:`~repro.simulation.events.EventQueue`, pops events in deterministic
order, advances the clock to each event's time, and invokes its callback.
Callbacks schedule further events through the same simulator.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.simulation.clock import SimClock
from repro.simulation.events import Event, EventQueue
from repro.simulation.rng import RngRegistry


class Simulator:
    """Deterministic single-threaded discrete-event simulator."""

    def __init__(self, seed: int = 0, origin: float = 0.0) -> None:
        self.clock = SimClock(origin=origin)
        self.rngs = RngRegistry(seed=seed)
        self._queue = EventQueue()
        self._events_fired = 0

    # -- scheduling --------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self.clock.now

    @property
    def pending_events(self) -> int:
        """Number of live (not cancelled) scheduled events."""
        return len(self._queue)

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._events_fired

    def at(
        self,
        when: float,
        callback: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute time ``when``."""
        if when < self.clock.now:
            raise SimulationError(
                f"cannot schedule in the past: now={self.clock.now}, when={when}"
            )
        return self._queue.push(when, callback, priority=priority, label=label)

    def after(
        self,
        delay: float,
        callback: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` after ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.at(self.clock.now + delay, callback, priority=priority, label=label)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        if not event.cancelled:
            event.cancel()
            self._queue.note_cancelled()

    # -- execution ---------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event. Returns False when the queue is empty."""
        if not self._queue:
            return False
        event = self._queue.pop()
        self.clock.advance_to(event.time)
        self._events_fired += 1
        event.callback()
        return True

    def run_until(self, deadline: float) -> int:
        """Run every event scheduled at or before ``deadline``.

        The clock finishes exactly at ``deadline`` even if the last event
        fired earlier. Returns the number of events executed.
        """
        if deadline < self.clock.now:
            raise SimulationError(
                f"deadline {deadline} is in the past (now={self.clock.now})"
            )
        executed = 0
        while True:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > deadline:
                break
            self.step()
            executed += 1
        self.clock.advance_to(deadline)
        return executed

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events``). Returns count."""
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            self.step()
            executed += 1
        return executed


class PeriodicProcess:
    """A fixed-interval activity on a simulator.

    Calls ``action(now)`` every ``interval`` seconds starting at
    ``start``; stops after ``until`` (inclusive) if given, or when
    :meth:`stop` is called. This is the backbone of opportunistic sensing
    (the paper's default: one measurement every 5 minutes).
    """

    def __init__(
        self,
        simulator: Simulator,
        interval: float,
        action: Callable[[float], Any],
        start: Optional[float] = None,
        until: Optional[float] = None,
        label: str = "periodic",
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"interval must be > 0, got {interval}")
        self._sim = simulator
        self._interval = float(interval)
        self._action = action
        self._until = until
        self._label = label
        self._stopped = False
        self._pending: Optional[Event] = None
        first = simulator.now if start is None else start
        if self._until is None or first <= self._until:
            self._pending = simulator.at(first, self._tick, label=label)

    @property
    def interval(self) -> float:
        """Seconds between consecutive firings."""
        return self._interval

    @property
    def stopped(self) -> bool:
        """Whether the process has been stopped or expired."""
        return self._stopped

    def set_interval(self, interval: float) -> None:
        """Change the firing interval (applies from the next tick on)."""
        if interval <= 0:
            raise SimulationError(f"interval must be > 0, got {interval}")
        self._interval = float(interval)

    def stop(self) -> None:
        """Stop the process; no further firings occur."""
        self._stopped = True
        if self._pending is not None:
            self._sim.cancel(self._pending)
            self._pending = None

    def _tick(self) -> None:
        self._pending = None
        if self._stopped:
            return
        self._action(self._sim.now)
        next_time = self._sim.now + self._interval
        if self._until is not None and next_time > self._until:
            self._stopped = True
            return
        self._pending = self._sim.at(next_time, self._tick, label=self._label)
