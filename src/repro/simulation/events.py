"""Event queue for the discrete-event simulation kernel.

Events are ordered by ``(time, priority, sequence)``. The sequence number
makes the ordering total and deterministic: two events scheduled for the
same instant with the same priority fire in scheduling order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """A schedulable callback.

    Attributes:
        time: absolute simulated time at which the event fires.
        priority: tie-breaker for events at the same time (lower first).
        seq: insertion sequence; makes ordering total.
        callback: zero-argument callable invoked when the event fires.
        label: human-readable tag for debugging and tracing.
        cancelled: cancelled events are skipped by the engine.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so that the engine skips it."""
        self.cancelled = True


class EventQueue:
    """A priority queue of :class:`Event` with deterministic ordering."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute ``time`` and return its event."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time}")
        event = Event(
            time=time,
            priority=priority,
            seq=next(self._counter),
            callback=callback,
            label=label,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the next live event.

        Cancelled events are discarded transparently. Raises
        :class:`SimulationError` when the queue is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise SimulationError("pop from an empty event queue")

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None when the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def note_cancelled(self) -> None:
        """Account for an externally cancelled event (keeps len() honest)."""
        if self._live <= 0:
            raise SimulationError("cancellation accounting underflow")
        self._live -= 1
