"""Discrete-event simulation kernel.

Every stochastic experiment in the reproduction runs on this kernel: a
simulated clock, an event queue ordered by (time, priority, sequence), and
deterministic per-component random-number streams so that experiments are
reproducible bit-for-bit under a single seed.

Public API
----------
- :class:`SimClock` — monotonic simulated time in seconds.
- :class:`Event` / :class:`EventQueue` — schedulable callbacks.
- :class:`Simulator` — the event loop (schedule, run_until, run).
- :class:`RngRegistry` — named, independent deterministic RNG streams.
- :class:`PeriodicProcess` — helper for fixed-interval activities.
"""

from repro.simulation.clock import SimClock
from repro.simulation.events import Event, EventQueue
from repro.simulation.engine import PeriodicProcess, Simulator
from repro.simulation.rng import RngRegistry

__all__ = [
    "SimClock",
    "Event",
    "EventQueue",
    "Simulator",
    "PeriodicProcess",
    "RngRegistry",
]
