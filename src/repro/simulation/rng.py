"""Deterministic named random-number streams.

Each simulated component draws from its own stream so that adding a new
component (or reordering draws within one) never perturbs the randomness
observed by the others. Streams are derived from a root seed and the
stream name via ``numpy.random.SeedSequence`` spawning keyed on a stable
hash of the name.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

from repro.errors import ConfigurationError


def _name_to_key(name: str) -> int:
    """Stable 64-bit key for a stream name (Python's hash() is salted)."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory of independent, reproducible ``numpy`` Generators.

    Example:
        >>> rngs = RngRegistry(seed=42)
        >>> a = rngs.stream("crowd.user.17")
        >>> b = rngs.stream("sensing.gps")
        >>> a is rngs.stream("crowd.user.17")
        True
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, int):
            raise ConfigurationError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """Root seed from which every stream derives."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the Generator for ``name``, creating it on first use.

        The same (seed, name) pair always yields the same sequence of
        draws, independent of creation order.
        """
        if not name:
            raise ConfigurationError("stream name must be non-empty")
        generator = self._streams.get(name)
        if generator is None:
            sequence = np.random.SeedSequence([self._seed, _name_to_key(name)])
            generator = np.random.Generator(np.random.PCG64(sequence))
            self._streams[name] = generator
        return generator

    def fork(self, salt: int) -> "RngRegistry":
        """A registry whose streams are all independent of this one's.

        Used by parameter sweeps so that replicate ``i`` uses
        ``registry.fork(i)`` without correlating with replicate ``j``.
        """
        return RngRegistry(seed=self._seed * 1_000_003 + salt)

    def __repr__(self) -> str:
        return f"RngRegistry(seed={self._seed}, streams={len(self._streams)})"
