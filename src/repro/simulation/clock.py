"""Simulated clock.

The clock is the single source of time for every simulated component
(broker timestamps, client buffers, battery accounting, ...). Time is a
float number of seconds since the start of the simulation. Only the
:class:`~repro.simulation.engine.Simulator` advances it.
"""

from __future__ import annotations

from repro.errors import SimulationError

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0


class SimClock:
    """Monotonic simulated time in seconds.

    The clock starts at ``origin`` (default 0.0). Components read it via
    :attr:`now`; only the simulation engine may call :meth:`advance_to`.
    """

    def __init__(self, origin: float = 0.0) -> None:
        if origin < 0:
            raise SimulationError(f"clock origin must be >= 0, got {origin}")
        self._origin = float(origin)
        self._now = float(origin)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def origin(self) -> float:
        """Time at which the clock started."""
        return self._origin

    @property
    def elapsed(self) -> float:
        """Seconds elapsed since the clock origin."""
        return self._now - self._origin

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises :class:`SimulationError` on any attempt to move backwards,
        which would indicate a corrupted event queue.
        """
        if when < self._now:
            raise SimulationError(
                f"clock cannot move backwards: now={self._now}, requested={when}"
            )
        self._now = float(when)

    # -- calendar helpers -------------------------------------------------
    # The crowd model works with "hour of day" and "day index"; these
    # helpers keep that arithmetic in one place.

    def hour_of_day(self) -> float:
        """Hour of the simulated day in [0, 24)."""
        return (self._now % SECONDS_PER_DAY) / SECONDS_PER_HOUR

    def day_index(self) -> int:
        """Number of whole simulated days elapsed since time 0."""
        return int(self._now // SECONDS_PER_DAY)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.3f})"
