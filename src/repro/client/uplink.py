"""Uplinks: how a client's documents reach the server.

The client is written against the small :class:`Uplink` duck type so it
can be unit-tested with a stub; :class:`BrokerUplink` is the production
path that publishes through the client's AMQP exchange exactly as
Figure 3 prescribes (client exchange -> app exchange -> GoFlow queue).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Protocol

from repro.broker.broker import Broker
from repro.broker.channel import Channel
from repro.broker.errors import BrokerError
from repro.errors import ConfigurationError


@dataclass
class TransmitResult:
    """Outcome of one uplink attempt."""

    accepted: int
    confirmed: bool


class Uplink(Protocol):
    """Anything that can carry documents to the server."""

    def send(self, documents: List[Dict[str, Any]]) -> TransmitResult:
        """Transmit ``documents``; raises :class:`BrokerError` on failure."""
        ...


class BrokerUplink:
    """Publishes documents through the client's own exchange.

    Args:
        broker: the broker shared with the server.
        client_exchange: the exchange GoFlow's channel management
            created for this client at login (Figure 3's E1/E2).
        datatype: routing datatype id (e.g. ``NoiseObservation``).
        confirm: use publisher confirms (v1.2.9+ behaviour).
    """

    def __init__(
        self,
        broker: Broker,
        client_exchange: str,
        app_id: str = "SC",
        datatype: str = "NoiseObservation",
        confirm: bool = True,
    ) -> None:
        if not client_exchange:
            raise ConfigurationError("client_exchange must be non-empty")
        self._broker = broker
        self._exchange = client_exchange
        self._app_id = app_id
        self._datatype = datatype
        self._confirm = confirm
        self._connection = None
        self._channel: Optional[Channel] = None

    def _ensure_channel(self) -> Channel:
        if self._channel is None or not self._channel.is_open:
            if self._connection is None or not self._connection.is_open:
                self._connection = self._broker.connect(
                    f"uplink-{self._exchange}"
                )
            self._channel = self._connection.channel()
            if self._confirm:
                self._channel.confirm_select()
        return self._channel

    def routing_key_for(self, document: Dict[str, Any]) -> str:
        """``<locationid>.<datatype>`` routing, as GoFlow's bindings expect.

        The location id is a coarse zone derived from the reported
        position (the paper uses country+zip, e.g. FR75013; the
        synthetic city uses 1 km zone cells). Non-localized observations
        route under the ``NOLOC`` zone.
        """
        location = document.get("location")
        if location is None:
            zone = "NOLOC"
        else:
            zone_x = int(location["x_m"] // 1000)
            zone_y = int(location["y_m"] // 1000)
            zone = f"Z{zone_x}-{zone_y}"
        return f"{zone}.{self._datatype}"

    def send(self, documents: List[Dict[str, Any]]) -> TransmitResult:
        """Publish every document; all-or-nothing per call."""
        if not documents:
            raise ConfigurationError("send requires at least one document")
        channel = self._ensure_channel()
        confirmed = True
        for document in documents:
            document.setdefault("app_id", self._app_id)
            seq = channel.basic_publish(
                self._exchange,
                self.routing_key_for(document),
                document,
                mandatory=True,
            )
            if self._confirm and seq is not None:
                confirmed = confirmed and channel.confirmed(seq)
        return TransmitResult(accepted=len(documents), confirmed=confirmed)

    def disconnect(self) -> None:
        """Drop the session (e.g. when the device goes offline)."""
        if self._connection is not None and self._connection.is_open:
            self._connection.close()
        self._connection = None
        self._channel = None
