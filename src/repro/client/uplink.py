"""Uplinks: how a client's documents reach the server.

The client is written against the small :class:`Uplink` duck type so it
can be unit-tested with a stub; :class:`BrokerUplink` is the production
path that publishes through the client's AMQP exchange exactly as
Figure 3 prescribes (client exchange -> app exchange -> GoFlow queue).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Protocol

from repro.broker.broker import Broker
from repro.broker.channel import Channel
from repro.broker.errors import BrokerError
from repro.errors import ConfigurationError


@dataclass
class TransmitResult:
    """Outcome of one uplink attempt.

    Attributes:
        accepted: documents confirmed delivered by the broker.
        confirmed: True only when *every* document was confirmed.
        undelivered: indices (into the sent batch) of documents the
            broker did not confirm — the ones the client must resend.
            None means everything was delivered.
    """

    accepted: int
    confirmed: bool
    undelivered: Optional[List[int]] = None


class UplinkError(BrokerError):
    """An uplink attempt died mid-batch.

    The contract is **at-least-once**, not all-or-nothing: documents
    confirmed before the failure stay delivered. ``delivered`` reports
    their indices so the caller resends only the rest — and ``nacked``
    the indices published but *not* confirmed before the failure: those
    may have been routed anyway, so their resend can duplicate on the
    wire (the server's idempotent ingest absorbs both cases).
    """

    def __init__(
        self,
        reason: str,
        delivered: Optional[List[int]] = None,
        nacked: Optional[List[int]] = None,
    ) -> None:
        delivered = delivered or []
        super().__init__(
            f"{reason} ({len(delivered)} of the batch delivered before the failure)"
        )
        self.delivered = delivered
        self.nacked = nacked or []

    @property
    def accepted(self) -> int:
        """Number of documents confirmed delivered before the failure."""
        return len(self.delivered)


class Uplink(Protocol):
    """Anything that can carry documents to the server."""

    def send(self, documents: List[Dict[str, Any]]) -> TransmitResult:
        """Transmit ``documents``; raises :class:`BrokerError` on failure."""
        ...


class BrokerUplink:
    """Publishes documents through the client's own exchange.

    Args:
        broker: the broker shared with the server.
        client_exchange: the exchange GoFlow's channel management
            created for this client at login (Figure 3's E1/E2).
        datatype: routing datatype id (e.g. ``NoiseObservation``).
        confirm: use publisher confirms (v1.2.9+ behaviour).
    """

    def __init__(
        self,
        broker: Broker,
        client_exchange: str,
        app_id: str = "SC",
        datatype: str = "NoiseObservation",
        confirm: bool = True,
    ) -> None:
        if not client_exchange:
            raise ConfigurationError("client_exchange must be non-empty")
        self._broker = broker
        self._exchange = client_exchange
        self._app_id = app_id
        self._datatype = datatype
        self._confirm = confirm
        self._connection = None
        self._channel: Optional[Channel] = None

    def _ensure_channel(self) -> Channel:
        if self._channel is None or not self._channel.is_open:
            if self._connection is None or not self._connection.is_open:
                self._connection = self._broker.connect(
                    f"uplink-{self._exchange}"
                )
            self._channel = self._connection.channel()
            if self._confirm:
                self._channel.confirm_select()
        return self._channel

    def routing_key_for(self, document: Dict[str, Any]) -> str:
        """``<locationid>.<datatype>`` routing, as GoFlow's bindings expect.

        The location id is a coarse zone derived from the reported
        position (the paper uses country+zip, e.g. FR75013; the
        synthetic city uses 1 km zone cells). Non-localized observations
        route under the ``NOLOC`` zone.
        """
        location = document.get("location")
        if location is None:
            zone = "NOLOC"
        else:
            zone_x = int(location["x_m"] // 1000)
            zone_y = int(location["y_m"] // 1000)
            zone = f"Z{zone_x}-{zone_y}"
        return f"{zone}.{self._datatype}"

    def send(self, documents: List[Dict[str, Any]]) -> TransmitResult:
        """Publish every document; **at-least-once** per call.

        Documents are published in order. A mid-batch failure raises
        :class:`UplinkError` carrying the indices already confirmed —
        those stay delivered and must not be resent. Without an
        exception, the :class:`TransmitResult` reports which documents
        the broker did not confirm (nacked publishes): resending them
        may duplicate data on the wire, which the server's dedup ledger
        collapses back to exactly-once storage.
        """
        if not documents:
            raise ConfigurationError("send requires at least one document")
        try:
            channel = self._ensure_channel()
        except BrokerError as error:
            raise UplinkError(f"uplink connect failed: {error}") from error
        delivered: List[int] = []
        undelivered: List[int] = []
        for index, document in enumerate(documents):
            document.setdefault("app_id", self._app_id)
            try:
                seq = channel.basic_publish(
                    self._exchange,
                    self.routing_key_for(document),
                    document,
                    mandatory=True,
                )
            except BrokerError as error:
                # the channel (or whole connection) is gone: drop the
                # session so the next attempt reconnects cleanly.
                self.disconnect()
                raise UplinkError(
                    f"uplink publish failed: {error}",
                    delivered=delivered,
                    nacked=undelivered,
                ) from error
            if self._confirm and seq is not None and not channel.confirmed(seq):
                undelivered.append(index)
            else:
                delivered.append(index)
        return TransmitResult(
            accepted=len(delivered),
            confirmed=not undelivered,
            undelivered=undelivered or None,
        )

    def disconnect(self) -> None:
        """Drop the session (e.g. when the device goes offline)."""
        if self._connection is not None and self._connection.is_open:
            self._connection.close()
        self._connection = None
        self._channel = None


class RestBatchUplink:
    """Carries whole batches over the REST batch-ingest endpoint.

    One POST per :meth:`send` call — one radio session per batch, with
    the server amortizing dedup, anonymization, index maintenance and
    analytics updates across it. Delivery stays exactly-once end to
    end: the endpoint is idempotent per observation (server dedup
    ledger), the batch insert is atomic, and the ledger only learns
    ``obs_id`` values after a successful insert. A 2xx therefore means
    every document is durably stored (or already was), and any failure
    means *nothing* from the batch was committed — the client simply
    retransmits the whole batch and the ledger rolls it forward.

    Args:
        server: the :class:`~repro.core.server.GoFlowServer` (the
            in-process stand-in for an HTTP connection to it).
        app_id: owning application.
        token: bearer token from login, required by the route's
            CONTRIBUTOR role check.
    """

    def __init__(self, server: Any, app_id: str = "SC", token: Optional[str] = None) -> None:
        self._server = server
        self._app_id = app_id
        self.token = token

    def send(self, documents: List[Dict[str, Any]]) -> TransmitResult:
        """POST the batch; raises :class:`UplinkError` on any failure."""
        if not documents:
            raise ConfigurationError("send requires at least one document")
        from repro.core.api import Request  # deferred: client stays core-free

        for document in documents:
            document.setdefault("app_id", self._app_id)
        try:
            # serialized exactly as an HTTP client would put it on the
            # wire; the server parses (and thereby owns) the documents.
            body = json.dumps({"observations": documents})
        except (TypeError, ValueError) as error:
            raise UplinkError(f"batch not JSON-serializable: {error}") from error
        try:
            response = self._server.handle(
                Request(
                    method="POST",
                    path=f"/apps/{self._app_id}/observations/batch",
                    body=body,
                    token=self.token,
                )
            )
        except Exception as error:
            raise UplinkError(f"batch uplink failed: {error}") from error
        if not response.ok:
            # batch-atomic insert + ledger-commit-after-insert: a non-2xx
            # means nothing landed, so the whole batch is cleanly
            # retryable with no maybe-delivered ambiguity.
            raise UplinkError(
                f"batch uplink rejected: status={response.status} "
                f"body={response.body!r}"
            )
        return TransmitResult(accepted=len(documents), confirmed=True)
