"""The client-side observation outbox.

Holds observations that have been produced but not yet acknowledged by
the server. Distinct from broker-side queues: this buffer lives on the
phone and survives connectivity gaps — it is what makes the "sent at the
next cycle" retry semantics (§5.3) possible.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.errors import ConfigurationError
from repro.sensing.scheduler import Observation


class ObservationBuffer:
    """FIFO outbox with an optional capacity.

    When full, the *oldest* observation is evicted (the freshest data is
    the most valuable for a live pollution map).
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._items: Deque[Observation] = deque()
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def push(self, observation: Observation) -> List[Observation]:
        """Append an observation, evicting the oldest when full.

        Returns the evicted observations (empty when the buffer had
        room) so the caller can release any per-observation state.
        """
        evicted: List[Observation] = []
        if self.capacity is not None and len(self._items) >= self.capacity:
            evicted.append(self._items.popleft())
            self.evicted += 1
        self._items.append(observation)
        return evicted

    def drain(self) -> List[Observation]:
        """Remove and return everything, oldest first."""
        items = list(self._items)
        self._items.clear()
        return items

    def peek_all(self) -> List[Observation]:
        """Everything, oldest first, without removing."""
        return list(self._items)

    def pop_while(self, predicate: Callable[[Observation], bool]) -> List[Observation]:
        """Remove and return the oldest-first prefix satisfying
        ``predicate`` (stops at the first non-match).

        The ack-cursor primitive: a consumer that acknowledged up to
        cursor N pops exactly the ``<= N`` prefix, leaving unacked items
        queued. Popping a prefix is not an eviction, so ``evicted`` does
        not move.
        """
        popped: List[Observation] = []
        while self._items and predicate(self._items[0]):
            popped.append(self._items.popleft())
        return popped

    def requeue_front(self, observations: List[Observation]) -> List[Observation]:
        """Put back observations after a failed transmission (order kept).

        The capacity cap holds here too: a failed transmit must not
        balloon the outbox past its bound. When requeued + buffered
        exceed ``capacity``, the oldest observations are evicted first
        (same freshest-data-wins policy as :meth:`push`), counted in
        ``evicted``, and returned to the caller.
        """
        for observation in reversed(observations):
            self._items.appendleft(observation)
        evicted: List[Observation] = []
        if self.capacity is not None:
            overflow = len(self._items) - self.capacity
            if overflow > 0:
                for _ in range(overflow):
                    evicted.append(self._items.popleft())
                self.evicted += overflow
        return evicted

    @property
    def oldest_taken_at(self) -> Optional[float]:
        """Timestamp of the oldest pending observation."""
        return self._items[0].taken_at if self._items else None
