"""Released client versions and their behaviours."""

from __future__ import annotations

import enum

from repro.sensing.modes import DEFAULT_BUFFER_SIZE


class AppVersion(enum.Enum):
    """SoundCity releases over the 10-month campaign (§5.3)."""

    V1_1 = "1.1"
    V1_2_9 = "1.2.9"
    V1_3 = "1.3"

    @property
    def buffer_size(self) -> int:
        """Observations accumulated before an uplink attempt."""
        return DEFAULT_BUFFER_SIZE if self is AppVersion.V1_3 else 1

    @property
    def buffers(self) -> bool:
        """Whether this version batches observations."""
        return self.buffer_size > 1

    @property
    def legacy_session(self) -> bool:
        """Whether each publish pays the v1.1 reconnect overhead.

        v1.2.9 "optimized use of RabbitMQ" by keeping a long-lived
        channel; v1.1 re-established state per transmission.
        """
        return self is AppVersion.V1_1
