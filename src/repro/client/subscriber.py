"""Client-side consumer for the live subscription plane.

The server's long-poll contract is *at-least-once*: events stay queued
until the consumer acknowledges their cursor, so a poll that is lost on
the wire simply re-serves the same events next time. The
:class:`StreamConsumer` turns that into exactly-once consumption by
tracking the highest cursor it has handed to the application and
acknowledging it on the next poll — the ack-cursor counterpart of the
outbox's :meth:`~repro.client.buffer.ObservationBuffer.pop_while`.

Like :class:`~repro.client.uplink.RestBatchUplink`, the consumer speaks
to anything with ``handle(Request) -> Response`` — the in-process
:class:`~repro.core.server.GoFlowServer` stands in for an HTTP
connection.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError


class StreamError(Exception):
    """A subscription request the server rejected."""

    def __init__(self, status: int, body: Any) -> None:
        super().__init__(f"stream request failed: status={status} body={body!r}")
        self.status = status
        self.body = body


class StreamConsumer:
    """One continuous query, consumed with explicit ack cursors.

    Args:
        server: anything exposing ``handle(Request) -> Response``.
        app_id: owning application.
        token: bearer token from login (CONTRIBUTOR role).
        filter_spec: optional filter body (``datatype``, ``model``,
            ``regions``, ``since``, ``until``) forwarded verbatim.
        observations / tiles: which event kinds to receive.
        capacity: server-side outbox bound for this subscription.
        max_overruns: drops tolerated before the server evicts us.
    """

    def __init__(
        self,
        server: Any,
        app_id: str = "SC",
        token: Optional[str] = None,
        filter_spec: Optional[Dict[str, Any]] = None,
        observations: bool = True,
        tiles: bool = False,
        capacity: Optional[int] = None,
        max_overruns: Optional[int] = None,
    ) -> None:
        self._server = server
        self._app_id = app_id
        self.token = token
        body: Dict[str, Any] = dict(filter_spec or {})
        body["observations"] = observations
        body["tiles"] = tiles
        if capacity is not None:
            body["capacity"] = capacity
        if max_overruns is not None:
            body["max_overruns"] = max_overruns
        result = self._request(
            "POST", f"/apps/{app_id}/stream/subscriptions", body=body
        )
        self.subscription_id: str = result["subscription_id"]
        #: highest cursor handed to the application; acked on next poll.
        self.cursor: int = int(result.get("cursor", 0))
        self.state: str = "live"
        self.events_received = 0
        #: events the server dropped on us (sum of lagged-marker gaps).
        self.missed = 0
        self.lagged_markers = 0
        self.closed = False

    # -- transport -----------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Any = None,
        params: Optional[Dict[str, str]] = None,
    ) -> Any:
        from repro.core.api import Request  # deferred: client stays core-free

        if body is not None:
            try:
                # round-trip through JSON exactly as an HTTP client
                # would: the server parses (and thereby owns) the body.
                body = json.loads(json.dumps(body))
            except (TypeError, ValueError) as error:
                raise ConfigurationError(
                    f"subscription body not JSON-serializable: {error}"
                ) from error
        response = self._server.handle(
            Request(
                method=method,
                path=path,
                params=params or {},
                body=body,
                token=self.token,
            )
        )
        if not response.ok:
            raise StreamError(response.status, response.body)
        return response.body

    # -- consumption -----------------------------------------------------------

    def poll(self, limit: int = 100) -> List[Dict[str, Any]]:
        """Fetch the next batch of events, acking everything already seen.

        Control events (``lagged``, ``evicted``) are folded into the
        consumer's counters *and* returned, so the application can react
        to gaps; data events advance :attr:`cursor`.
        """
        if self.closed:
            raise ConfigurationError("consumer is closed")
        result = self._request(
            "GET",
            f"/apps/{self._app_id}/stream/subscriptions/"
            f"{self.subscription_id}/events",
            params={"ack": str(self.cursor), "limit": str(limit)},
        )
        self.state = result["state"]
        events = result["events"]
        for event in events:
            kind = event.get("kind")
            if kind == "lagged":
                self.lagged_markers += 1
                self.missed += int(event.get("missed", 0))
            elif kind != "evicted":
                self.events_received += 1
        self.cursor = max(self.cursor, int(result["cursor"]))
        return events

    def drain(self, limit: int = 100) -> List[Dict[str, Any]]:
        """Poll until the server reports nothing pending."""
        collected: List[Dict[str, Any]] = []
        while True:
            events = self.poll(limit=limit)
            collected.extend(events)
            if not events or self.state != "live":
                return collected

    def close(self) -> Dict[str, Any]:
        """Unsubscribe; idempotent on the consumer side."""
        if self.closed:
            return {"removed": False, "state": self.state}
        self.closed = True
        return self._request(
            "DELETE",
            f"/apps/{self._app_id}/stream/subscriptions/{self.subscription_id}",
        )
