"""Retry policy for the client uplink: backoff, jitter, budget.

The client has no timers of its own — uplink attempts are triggered by
the next observation or an explicit flush (§5.3's "sent at the next
cycle"). The retry layer therefore does not *schedule* anything; it
answers one question against the simulated clock: "is this attempt
allowed yet?". After each consecutive failure the allowed time moves
out exponentially (with deterministic jitter so a fleet of clients does
not retry in lock-step), and a retry *budget* bounds how many times the
same head-of-outbox batch may fail before it is dropped and counted —
unbounded retries against a dead link are exactly the battery drain the
paper warns about.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter and a per-batch retry budget.

    Attributes:
        base_delay_s: backoff after the first failure.
        multiplier: growth factor per consecutive failure.
        max_delay_s: backoff ceiling.
        jitter: fraction of the delay drawn uniformly at random and
            added on top (0 disables jitter).
        budget: consecutive failed attempts allowed for one batch
            before it is dropped; None retries forever.
    """

    base_delay_s: float = 60.0
    multiplier: float = 2.0
    max_delay_s: float = 3600.0
    jitter: float = 0.1
    budget: Optional[int] = 8

    def __post_init__(self) -> None:
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.budget is not None and self.budget <= 0:
            raise ConfigurationError(f"budget must be positive, got {self.budget}")


class BackoffState:
    """Tracks consecutive failures for one client, deterministically.

    Jitter draws come from a RNG seeded from the policy seed and the
    client id (CRC32, stable across processes — ``hash()`` is salted),
    so a re-run of the same simulation produces the same retry times.
    """

    def __init__(self, policy: RetryPolicy, client_id: str, seed: int = 0) -> None:
        self.policy = policy
        self._rng = random.Random((seed << 32) ^ zlib.crc32(client_id.encode("utf-8")))
        self.failures = 0
        self.next_attempt_at = float("-inf")

    def allows(self, now: float) -> bool:
        """Whether an attempt may be made at simulated time ``now``."""
        return now >= self.next_attempt_at

    def exhausted(self) -> bool:
        """Whether the current batch has used up its retry budget."""
        budget = self.policy.budget
        return budget is not None and self.failures >= budget

    def record_failure(self, now: float) -> None:
        """Register a failed attempt; pushes the next allowed time out."""
        self.failures += 1
        delay = min(
            self.policy.max_delay_s,
            self.policy.base_delay_s * self.policy.multiplier ** (self.failures - 1),
        )
        if self.policy.jitter:
            delay += delay * self.policy.jitter * self._rng.random()
        self.next_attempt_at = now + delay

    def reset(self) -> None:
        """Register success (or a dropped batch): backoff clears."""
        self.failures = 0
        self.next_attempt_at = float("-inf")
