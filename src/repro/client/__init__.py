"""The GoFlow mobile client.

§5.3: "We have implemented two versions of the GoFlow client: one sends
the measurements after each observation (every 5 min by default); the
other buffers a series of 10 measurements before sending them (hence
every 50 min by default). In both cases, if there is no network
connection at the time of emission, the measurements are sent at the
next cycle."

Three released versions are modelled (Figure 17):

========  ==============  =======================================
version   buffering       notes
========  ==============  =======================================
v1.1      none            initial release, reconnects per publish
v1.2.9    none            optimized RabbitMQ usage (long-lived
                          channel; cheaper transmissions)
v1.3      10 observations energy-delay tradeoff release
========  ==============  =======================================
"""

from repro.client.versions import AppVersion
from repro.client.buffer import ObservationBuffer
from repro.client.retry import BackoffState, RetryPolicy
from repro.client.uplink import BrokerUplink, TransmitResult, Uplink, UplinkError
from repro.client.client import ClientStats, GoFlowClient
from repro.client.subscriber import StreamConsumer, StreamError

__all__ = [
    "AppVersion",
    "BackoffState",
    "BrokerUplink",
    "ClientStats",
    "GoFlowClient",
    "ObservationBuffer",
    "RetryPolicy",
    "StreamConsumer",
    "StreamError",
    "TransmitResult",
    "Uplink",
    "UplinkError",
]
