"""The GoFlow client: buffering, cycles, retries, and energy accounting.

Behavioural contract (from §5.3):

- every produced observation enters the outbox;
- an uplink is *attempted* when the outbox holds at least
  ``version.buffer_size`` observations (1 for v1.1/v1.2.9, 10 for v1.3);
- if the device is offline at that moment, nothing happens — the
  observations wait for "the next cycle", i.e. the next attempt
  (triggered by the next observation, or by :meth:`flush` calls);
- a transmission pays one radio wake-up regardless of batch size, which
  is the buffering energy saving of Figure 16;
- per-observation transmission delay (server receive time minus
  ``taken_at``) is recorded for Figure 17.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

import numpy as np

from repro.broker.errors import BrokerError
from repro.client.buffer import ObservationBuffer
from repro.client.retry import BackoffState, RetryPolicy
from repro.client.uplink import Uplink, UplinkError
from repro.client.versions import AppVersion
from repro.crowd.connectivity import ConnectivityModel
from repro.devices.battery import Battery, NetworkKind
from repro.errors import ConfigurationError
from repro.sensing.scheduler import Observation


def obs_token(user_id: str) -> str:
    """Opaque per-client prefix for ``obs_id`` stamps.

    Deduplication needs a stable per-client id, but the CNIL policy
    forbids the raw ``user_id`` from ever reaching the document store —
    and ``obs_id`` is persisted verbatim. A one-way digest keeps the
    stamp stable across retries without embedding the identifier.
    """
    digest = hashlib.sha256(user_id.encode("utf-8")).hexdigest()
    return "c" + digest[:16]


@dataclass
class ClientStats:
    """Lifetime counters of one client.

    ``sent`` counts observations *confirmed delivered* — an attempt the
    broker did not confirm is a failure, not a send. The reliability
    counters record every per-attempt outcome: ``requeued``
    (observations put back for retry), ``dropped`` (discarded after the
    retry budget ran out), ``duplicated`` (observations redelivered
    after an unconfirmed attempt — the server dedupes them), plus how
    the retry machinery behaved (``retries``, ``confirm_failures``,
    ``backoff_skips``, ``retries_exhausted``).
    """

    produced: int = 0
    transmissions: int = 0
    sent: int = 0
    failed_attempts: int = 0
    requeued: int = 0
    dropped: int = 0
    duplicated: int = 0
    confirm_failures: int = 0
    retries: int = 0
    backoff_skips: int = 0
    retries_exhausted: int = 0
    delays_s: List[float] = field(default_factory=list)


class GoFlowClient:
    """The on-phone middleware client of one user.

    Args:
        user_id: owner.
        version: release behaviour (buffering, session overhead).
        uplink: transport to the server.
        connectivity: the user's connectivity model (None = always on).
        battery: charged for transmissions when provided.
        clock: simulated-time source for delay computation.
        latency_s: fixed one-way network latency added to deliveries
            (the paper's "within 10 s" fast path).
        retry: optional :class:`RetryPolicy` enabling exponential
            backoff + jitter between failed attempts and a bounded
            retry budget per batch. None keeps the legacy behaviour:
            retry at every cycle, forever.
        retry_seed: deterministic seed for the backoff jitter (combined
            with ``user_id`` so every client jitters differently).
        uplink_batch: maximum documents handed to ``uplink.send`` per
            call; a flush larger than this is split into consecutive
            chunks (a batch uplink's natural unit). None sends the
            whole outbox in one call (the legacy behaviour).
    """

    def __init__(
        self,
        user_id: str,
        version: AppVersion,
        uplink: Uplink,
        clock: Callable[[], float],
        connectivity: Optional[ConnectivityModel] = None,
        battery: Optional[Battery] = None,
        latency_s: float = 3.0,
        outbox_capacity: Optional[int] = 5000,
        retry: Optional[RetryPolicy] = None,
        retry_seed: int = 0,
        uplink_batch: Optional[int] = None,
    ) -> None:
        if latency_s < 0:
            raise ConfigurationError(f"latency must be >= 0, got {latency_s}")
        if uplink_batch is not None and uplink_batch < 1:
            raise ConfigurationError(
                f"uplink_batch must be >= 1, got {uplink_batch}"
            )
        self.user_id = user_id
        self._obs_token = obs_token(user_id)
        self.version = version
        self._uplink = uplink
        self._clock = clock
        self._connectivity = connectivity
        self._battery = battery
        self._latency = latency_s
        self._uplink_batch = uplink_batch
        self.outbox = ObservationBuffer(capacity=outbox_capacity)
        self._backoff = (
            BackoffState(retry, user_id, seed=retry_seed) if retry is not None else None
        )
        # observations that were transmitted but not confirmed: a resend
        # may duplicate them on the wire (the server's ledger dedupes).
        self._maybe_delivered: Set[int] = set()
        self.stats = ClientStats()

    # -- ingestion ------------------------------------------------------------

    def on_observation(self, observation: Observation) -> None:
        """Sensing callback: enqueue and run the uplink policy.

        A configured ``uplink_batch`` larger than the version's buffer
        size raises the transmit threshold to a full batch: sending a
        partial batch would spend a radio session on less than the
        batch unit the uplink amortizes over.
        """
        self.stats.produced += 1
        self._forget_evicted(self.outbox.push(observation))
        threshold = self.version.buffer_size
        if self._uplink_batch is not None and self._uplink_batch > threshold:
            threshold = self._uplink_batch
        if len(self.outbox) >= threshold:
            self.try_transmit()

    # -- transmission ------------------------------------------------------------

    def _online_transport(self) -> Optional[NetworkKind]:
        if self._connectivity is None:
            return NetworkKind.WIFI
        now = self._clock()
        if not self._connectivity.is_online(now):
            return None
        return self._connectivity.transport(now) or NetworkKind.CELL_3G

    def try_transmit(self) -> bool:
        """Attempt to flush the outbox; returns True when all was sent.

        Offline devices return False and keep the outbox intact — the
        "sent at the next cycle" behaviour. With a retry policy, an
        attempt inside the backoff window is skipped the same way.

        Delivery is confirm-aware: only observations the broker
        *confirmed* count as sent. Unconfirmed or failed observations
        are requeued (and, once the retry budget is exhausted, dropped
        and counted). Each document carries a stable ``obs_id`` so the
        server can collapse retry duplicates to exactly-once storage.
        """
        if not self.outbox:
            return True
        now = self._clock()
        if self._backoff is not None and not self._backoff.allows(now):
            self.stats.backoff_skips += 1
            return False
        transport = self._online_transport()
        if transport is None:
            self.stats.failed_attempts += 1
            return False
        observations = self.outbox.drain()
        documents = []
        for observation in observations:
            document = observation.to_document()
            document["obs_id"] = f"{self._obs_token}:{observation.observation_id}"
            document["sent_at"] = now
            document["received_at"] = now + self._latency
            document["app_version"] = self.version.value
            documents.append(document)
        if self._backoff is not None and self._backoff.failures:
            self.stats.retries += 1
        # the outbox drains in chunks of uplink_batch (everything at
        # once when None — the legacy single-send path). Failure stops
        # the chunk loop: later chunks were never attempted, so they
        # requeue cleanly with no maybe-delivered ambiguity, and the
        # per-observation obs_id rolls the retransmission forward.
        chunk = self._uplink_batch or len(observations)
        delivered: Set[int] = set()
        maybe_delivered: Set[int] = set()
        failed = False
        for start in range(0, len(observations), chunk):
            part = documents[start : start + chunk]
            try:
                result = self._uplink.send(part)
            except UplinkError as error:
                delivered |= {start + index for index in error.delivered}
                # documents nacked before the failure were still routed
                # by the broker: their resend may duplicate on the wire.
                maybe_delivered |= {start + index for index in error.nacked}
                failed = True
                break
            except BrokerError:
                failed = True
                break
            undelivered = (
                set(result.undelivered)
                if result is not None and result.undelivered
                else set()
            )
            delivered |= {
                start + index for index in range(len(part)) if index not in undelivered
            }
            maybe_delivered |= {start + index for index in undelivered}
        self._settle_delivered(observations, delivered, transport, now)
        if failed or maybe_delivered:
            if maybe_delivered and not failed:
                self.stats.confirm_failures += 1
            self._handle_failure(
                observations, delivered, now, maybe_delivered=maybe_delivered
            )
            return False
        if self._backoff is not None:
            self._backoff.reset()
        return True

    def _settle_delivered(
        self,
        observations: List[Observation],
        delivered: Set[int],
        transport: NetworkKind,
        now: float,
    ) -> None:
        """Account for the confirmed part of an attempt (possibly all)."""
        if not delivered:
            return
        if self._battery is not None:
            self._battery.transmit(
                len(delivered), transport, legacy_session=self.version.legacy_session
            )
        self.stats.transmissions += 1
        self.stats.sent += len(delivered)
        for index in delivered:
            observation = observations[index]
            self.stats.delays_s.append(now + self._latency - observation.taken_at)
            if observation.observation_id in self._maybe_delivered:
                self._maybe_delivered.discard(observation.observation_id)
                self.stats.duplicated += 1

    def _handle_failure(
        self,
        observations: List[Observation],
        delivered: Set[int],
        now: float,
        maybe_delivered: Set[int],
    ) -> None:
        """Requeue (or drop, once the budget is gone) the unsent part.

        ``maybe_delivered`` holds the indices of observations possibly
        already on the server (an unconfirmed publish may still have
        been routed): their eventual redelivery is counted in
        ``stats.duplicated``.
        """
        requeue = [
            observation
            for index, observation in enumerate(observations)
            if index not in delivered
        ]
        self.stats.failed_attempts += 1
        for index in maybe_delivered:
            self._maybe_delivered.add(observations[index].observation_id)
        if self._backoff is not None:
            self._backoff.record_failure(now)
            if self._backoff.exhausted():
                self.stats.dropped += len(requeue)
                self.stats.retries_exhausted += 1
                for observation in requeue:
                    self._maybe_delivered.discard(observation.observation_id)
                self._backoff.reset()
                return
        self._forget_evicted(self.outbox.requeue_front(requeue))
        self.stats.requeued += len(requeue)

    def _forget_evicted(self, evicted: List[Observation]) -> None:
        """Evicted observations will never be resent: keep the
        maybe-delivered set bounded by the outbox capacity."""
        for observation in evicted:
            self._maybe_delivered.discard(observation.observation_id)

    def flush(self, force: bool = False) -> bool:
        """Force an uplink attempt regardless of buffer level.

        ``force=True`` additionally bypasses the retry backoff window
        (end-of-run drains, user-initiated "send now").
        """
        if force and self._backoff is not None:
            self._backoff.next_attempt_at = float("-inf")
        return self.try_transmit()

    # -- subscriptions -----------------------------------------------------------

    def subscribe(
        self,
        server,
        token: Optional[str] = None,
        app_id: str = "SC",
        filter_spec=None,
        **options,
    ):
        """Open a continuous query against ``server``.

        Returns a :class:`~repro.client.subscriber.StreamConsumer`
        tracking its own ack cursor; ``options`` are forwarded
        (``observations``, ``tiles``, ``capacity``, ``max_overruns``).
        """
        from repro.client.subscriber import StreamConsumer

        return StreamConsumer(
            server,
            app_id=app_id,
            token=token,
            filter_spec=filter_spec,
            **options,
        )

    # -- reporting -----------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Observations waiting on the phone."""
        return len(self.outbox)

    def delay_quantiles(self, quantiles=(0.5, 0.9, 0.99)) -> List[float]:
        """Delay quantiles in seconds over everything sent so far."""
        if not self.stats.delays_s:
            raise ConfigurationError("no transmissions recorded yet")
        return [float(q) for q in np.quantile(self.stats.delays_s, quantiles)]
