"""The GoFlow client: buffering, cycles, retries, and energy accounting.

Behavioural contract (from §5.3):

- every produced observation enters the outbox;
- an uplink is *attempted* when the outbox holds at least
  ``version.buffer_size`` observations (1 for v1.1/v1.2.9, 10 for v1.3);
- if the device is offline at that moment, nothing happens — the
  observations wait for "the next cycle", i.e. the next attempt
  (triggered by the next observation, or by :meth:`flush` calls);
- a transmission pays one radio wake-up regardless of batch size, which
  is the buffering energy saving of Figure 16;
- per-observation transmission delay (server receive time minus
  ``taken_at``) is recorded for Figure 17.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.broker.errors import BrokerError
from repro.client.buffer import ObservationBuffer
from repro.client.uplink import Uplink
from repro.client.versions import AppVersion
from repro.crowd.connectivity import ConnectivityModel
from repro.devices.battery import Battery, NetworkKind
from repro.errors import ConfigurationError
from repro.sensing.scheduler import Observation


@dataclass
class ClientStats:
    """Lifetime counters of one client."""

    produced: int = 0
    transmissions: int = 0
    sent: int = 0
    failed_attempts: int = 0
    delays_s: List[float] = field(default_factory=list)


class GoFlowClient:
    """The on-phone middleware client of one user.

    Args:
        user_id: owner.
        version: release behaviour (buffering, session overhead).
        uplink: transport to the server.
        connectivity: the user's connectivity model (None = always on).
        battery: charged for transmissions when provided.
        clock: simulated-time source for delay computation.
        latency_s: fixed one-way network latency added to deliveries
            (the paper's "within 10 s" fast path).
    """

    def __init__(
        self,
        user_id: str,
        version: AppVersion,
        uplink: Uplink,
        clock: Callable[[], float],
        connectivity: Optional[ConnectivityModel] = None,
        battery: Optional[Battery] = None,
        latency_s: float = 3.0,
        outbox_capacity: Optional[int] = 5000,
    ) -> None:
        if latency_s < 0:
            raise ConfigurationError(f"latency must be >= 0, got {latency_s}")
        self.user_id = user_id
        self.version = version
        self._uplink = uplink
        self._clock = clock
        self._connectivity = connectivity
        self._battery = battery
        self._latency = latency_s
        self.outbox = ObservationBuffer(capacity=outbox_capacity)
        self.stats = ClientStats()

    # -- ingestion ------------------------------------------------------------

    def on_observation(self, observation: Observation) -> None:
        """Sensing callback: enqueue and run the uplink policy."""
        self.stats.produced += 1
        self.outbox.push(observation)
        if len(self.outbox) >= self.version.buffer_size:
            self.try_transmit()

    # -- transmission ------------------------------------------------------------

    def _online_transport(self) -> Optional[NetworkKind]:
        if self._connectivity is None:
            return NetworkKind.WIFI
        now = self._clock()
        if not self._connectivity.is_online(now):
            return None
        return self._connectivity.transport(now) or NetworkKind.CELL_3G

    def try_transmit(self) -> bool:
        """Attempt to flush the outbox; returns True when it was sent.

        Offline devices return False and keep the outbox intact — the
        "sent at the next cycle" behaviour.
        """
        if not self.outbox:
            return True
        transport = self._online_transport()
        if transport is None:
            self.stats.failed_attempts += 1
            return False
        observations = self.outbox.drain()
        documents = []
        now = self._clock()
        for observation in observations:
            document = observation.to_document()
            document["sent_at"] = now
            document["received_at"] = now + self._latency
            document["app_version"] = self.version.value
            documents.append(document)
        try:
            self._uplink.send(documents)
        except BrokerError:
            self.outbox.requeue_front(observations)
            self.stats.failed_attempts += 1
            return False
        if self._battery is not None:
            self._battery.transmit(
                len(documents), transport, legacy_session=self.version.legacy_session
            )
        self.stats.transmissions += 1
        self.stats.sent += len(documents)
        for observation in observations:
            self.stats.delays_s.append(now + self._latency - observation.taken_at)
        return True

    def flush(self) -> bool:
        """Force an uplink attempt regardless of buffer level."""
        return self.try_transmit()

    # -- reporting -----------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Observations waiting on the phone."""
        return len(self.outbox)

    def delay_quantiles(self, quantiles=(0.5, 0.9, 0.99)) -> List[float]:
        """Delay quantiles in seconds over everything sent so far."""
        if not self.stats.delays_s:
            raise ConfigurationError("no transmissions recorded yet")
        return [float(q) for q in np.quantile(self.stats.delays_s, quantiles)]
