"""The contributing crowd: who senses, when, where, and how connected.

§6's social analysis rests on three generative layers:

- :mod:`repro.crowd.diurnal` — per-user daily participation profiles.
  The population aggregate plateaus from 10 AM to 9 PM (Fig. 18) while
  individual users differ wildly (Fig. 19) — the paper's "heterogeneity
  of the crowd is an asset" finding.
- :mod:`repro.crowd.mobility` — a semi-Markov activity model (still ~70 %
  of the time, Fig. 21) that also moves the user between home/work
  anchors on the city plane.
- :mod:`repro.crowd.connectivity` — alternating connected/disconnected
  sessions with heavy-tailed offline periods, responsible for the
  multi-hour transmission delays of Fig. 17.
- :mod:`repro.crowd.population` — draws users (model, profile, anchors,
  install date) matching the Figure 9 fleet composition.
"""

from repro.crowd.diurnal import DiurnalProfile, population_hourly_distribution
from repro.crowd.mobility import MobilityModel, MobilityParams
from repro.crowd.connectivity import ConnectivityModel, ConnectivityParams
from repro.crowd.population import Population, User

__all__ = [
    "ConnectivityModel",
    "ConnectivityParams",
    "DiurnalProfile",
    "MobilityModel",
    "MobilityParams",
    "Population",
    "User",
    "population_hourly_distribution",
]
