"""Per-user diurnal participation profiles.

A profile gives, for each hour of the day, the probability that a
scheduled background sample actually happens (phone awake, app alive,
user participating). Profiles are mixtures of 1-3 von-Mises-like bumps
on the 24-hour circle plus a floor, drawn per user:

- bump *centers* are drawn from the population's waking-hours
  distribution, so the aggregate over many users is the broad 10 AM -
  9 PM plateau of Figure 18;
- bump widths, heights and count differ per user, producing the
  morning-people / night-owls diversity of Figure 19.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

HOURS = np.arange(24)


def _circular_gaussian(hours: np.ndarray, center: float, width: float) -> np.ndarray:
    """A Gaussian bump on the 24-hour circle."""
    delta = np.minimum(np.abs(hours - center), 24.0 - np.abs(hours - center))
    return np.exp(-0.5 * np.square(delta / width))


@dataclass(frozen=True)
class DiurnalProfile:
    """Availability probability per hour of day for one user."""

    hourly: np.ndarray  # shape (24,), values in [0, 1]

    def __post_init__(self) -> None:
        if self.hourly.shape != (24,):
            raise ConfigurationError(
                f"profile must have 24 hourly values, got shape {self.hourly.shape}"
            )
        if np.any(self.hourly < 0) or np.any(self.hourly > 1):
            raise ConfigurationError("hourly availabilities must be in [0, 1]")

    def availability(self, hour_of_day: float) -> float:
        """Availability at a (possibly fractional) hour of day."""
        return float(self.hourly[int(hour_of_day) % 24])

    def normalized(self) -> np.ndarray:
        """The profile as a distribution over hours (sums to 1)."""
        total = float(self.hourly.sum())
        if total == 0:
            return np.full(24, 1.0 / 24.0)
        return self.hourly / total

    @property
    def expected_daily_share(self) -> float:
        """Mean availability over the day (contribution intensity proxy)."""
        return float(self.hourly.mean())

    @staticmethod
    def sample(rng: np.random.Generator, intensity: float = 1.0) -> "DiurnalProfile":
        """Draw one user's profile.

        Args:
            rng: the user's random stream.
            intensity: scales overall availability; per-device
                contribution volume differences (Fig. 9's
                measurements-per-device spread) enter here.
        """
        if intensity <= 0:
            raise ConfigurationError(f"intensity must be > 0, got {intensity}")
        bump_count = int(rng.integers(1, 4))
        profile = np.zeros(24, dtype=float)
        for _ in range(bump_count):
            # Waking-hours prior: triangular over [7, 23] peaking at 14.
            center = float(rng.triangular(7.0, 14.0, 23.0))
            width = float(rng.uniform(1.5, 5.0))
            height = float(rng.uniform(0.3, 1.0))
            profile += height * _circular_gaussian(HOURS.astype(float), center, width)
        night_floor = float(rng.uniform(0.0, 0.08))
        profile = np.clip(profile + night_floor, 0.0, None)
        peak = profile.max()
        if peak > 0:
            profile = profile / peak
        profile = np.clip(profile * min(intensity, 1.0), 0.0, 1.0)
        return DiurnalProfile(hourly=profile)


def population_hourly_distribution(
    profiles: Sequence[DiurnalProfile],
) -> np.ndarray:
    """The population's measurement share per hour (sums to 1).

    This is the expected Figure 18 curve: each user contributes
    proportionally to their hourly availability.
    """
    if not profiles:
        raise ConfigurationError("need at least one profile")
    total = np.zeros(24, dtype=float)
    for profile in profiles:
        total += profile.hourly
    grand = float(total.sum())
    if grand == 0:
        raise ConfigurationError("all profiles are identically zero")
    return total / grand
