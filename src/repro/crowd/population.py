"""The user population.

Draws the synthetic SoundCity crowd: each :class:`User` owns a phone of
one of the Figure 9 models, a diurnal participation profile, mobility
anchors in the city, a connectivity pattern, an install date within the
campaign, and a sharing-consent flag (§4.2: "By default, the
observations collected by a user are made available to the user only.
If the user accepts, the observations are communicated to the GoFlow
server").

Per-model *contribution intensities* are derived from Figure 9: the
measurements-per-device column differs 3x across models (e.g. GT-I9195
users contributed 12.6k measurements each, NEXUS 5 users 6.5k) and the
population reproduces those relative intensities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.crowd.connectivity import ConnectivityModel, ConnectivityParams
from repro.crowd.diurnal import DiurnalProfile
from repro.crowd.mobility import MobilityModel, MobilityParams
from repro.devices.models import PhoneModel
from repro.devices.registry import DeviceRegistry
from repro.simulation.rng import RngRegistry


@dataclass
class User:
    """One member of the contributing crowd."""

    user_id: str
    model: PhoneModel
    profile: DiurnalProfile
    mobility: MobilityModel
    connectivity: ConnectivityModel
    installed_at_s: float
    shares_data: bool

    def context(self) -> "UserContext":
        """A sensing context view over this user's dynamic state."""
        return UserContext(self)


class UserContext:
    """Adapts a :class:`User` to the sensing scheduler's context duck type."""

    def __init__(self, user: User) -> None:
        self._user = user
        self._rng_cache: Optional[np.random.Generator] = None

    def bind_clock(self, clock_now) -> "UserContext":
        """Attach a time source so position/activity auto-advance."""
        self._now = clock_now
        return self

    def position(self) -> Tuple[float, float]:
        """Current true position; advances mobility lazily."""
        self._advance()
        return self._user.mobility.position()

    def activity(self) -> str:
        """Current true activity; advances mobility lazily."""
        self._advance()
        return self._user.mobility.state

    def available(self, hour_of_day: float) -> bool:
        """Whether a background sample happens this tick."""
        probability = self._user.profile.availability(hour_of_day)
        return bool(self._availability_rng().random() < probability)

    def _advance(self) -> None:
        now = getattr(self, "_now", None)
        if now is not None:
            self._user.mobility.advance(now())

    def _availability_rng(self) -> np.random.Generator:
        if self._rng_cache is None:
            # per-user deterministic stream derived from the user id.
            # hashlib, not hash(): Python's string hash is salted per
            # process and would break cross-process reproducibility.
            import hashlib

            digest = hashlib.sha256(self._user.user_id.encode("utf-8")).digest()
            seed = int.from_bytes(digest[:4], "big")
            self._rng_cache = np.random.Generator(np.random.PCG64(seed))
        return self._rng_cache


class Population:
    """Generates and holds the synthetic crowd.

    Args:
        rngs: the simulation's RNG registry.
        registry: phone-model registry (Figure 9 by default).
        scale: fleet scale relative to the paper's 2,091 devices
            (e.g. 0.05 -> ~105 devices with the same model shares).
        campaign_days: length of the observation campaign; install
            dates spread over the first 60 % of it with an early spike
            (the paper's launch press coverage).
        city_extent_m: side of the square city the crowd lives in.
        share_rate: probability a user consents to server upload.
    """

    def __init__(
        self,
        rngs: RngRegistry,
        registry: Optional[DeviceRegistry] = None,
        scale: float = 0.05,
        campaign_days: float = 10.0,
        city_extent_m: float = 10_000.0,
        share_rate: float = 0.9,
        mobility_params: Optional[MobilityParams] = None,
        connectivity_params: Optional[ConnectivityParams] = None,
    ) -> None:
        if campaign_days <= 0:
            raise ConfigurationError("campaign_days must be > 0")
        if not 0.0 < share_rate <= 1.0:
            raise ConfigurationError("share_rate must be in (0, 1]")
        self.registry = registry or DeviceRegistry()
        self.scale = scale
        self.campaign_days = campaign_days
        self.city_extent_m = city_extent_m
        self._rngs = rngs
        self.users: List[User] = []

        intensity_by_model = self._relative_intensities()
        fleet = self.registry.scaled_fleet(scale)
        draw = rngs.stream("population")
        counter = 0
        for model_name, device_count in fleet.items():
            model = self.registry.get(model_name)
            for _ in range(device_count):
                counter += 1
                user_id = f"u{counter:05d}"
                user_rng = rngs.stream(f"user.{user_id}")
                profile = DiurnalProfile.sample(
                    user_rng, intensity=intensity_by_model[model_name]
                )
                home = tuple(draw.uniform(0, city_extent_m, size=2))
                work = tuple(draw.uniform(0, city_extent_m, size=2))
                mobility = MobilityModel(
                    rngs.stream(f"mobility.{user_id}"),
                    home_xy_m=home,
                    work_xy_m=work,
                    params=mobility_params,
                )
                connectivity = ConnectivityModel(
                    rngs.stream(f"connectivity.{user_id}"),
                    params=connectivity_params,
                )
                installed = self._draw_install_time(draw)
                shares = bool(draw.random() < share_rate)
                self.users.append(
                    User(
                        user_id=user_id,
                        model=model,
                        profile=profile,
                        mobility=mobility,
                        connectivity=connectivity,
                        installed_at_s=installed,
                        shares_data=shares,
                    )
                )

    def _relative_intensities(self) -> Dict[str, float]:
        """Model -> participation intensity in (0, 1].

        Normalized measurements-per-device from Figure 9, so relative
        contribution volumes across models match the paper.
        """
        per_device = {
            m.name: m.measurements_per_device for m in self.registry.models()
        }
        peak = max(per_device.values())
        return {name: value / peak for name, value in per_device.items()}

    def _draw_install_time(self, rng: np.random.Generator) -> float:
        """Install date: launch spike then a steady trickle.

        40 % of users install in the first 10 % of the campaign (the
        press-covered launch), the rest uniformly over the first 80 %.
        """
        horizon = self.campaign_days * 86400.0
        if rng.random() < 0.4:
            return float(rng.uniform(0.0, 0.1 * horizon))
        return float(rng.uniform(0.0, 0.8 * horizon))

    # -- views -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.users)

    def by_model(self) -> Dict[str, List[User]]:
        """Users grouped by phone model name."""
        groups: Dict[str, List[User]] = {}
        for user in self.users:
            groups.setdefault(user.model.name, []).append(user)
        return groups

    def sharing_users(self) -> List[User]:
        """Users who consented to server upload."""
        return [u for u in self.users if u.shares_data]
