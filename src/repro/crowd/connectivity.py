"""Connectivity: when a phone can reach the server, and over what.

Figure 17's headline is that 35 % (unbuffered) to 45 % (buffered) of
measurements arrive *more than two hours* after being taken, "which
stresses the disconnection of devices", while ~30 % arrive within 10
seconds. The model:

- each user alternates **online sessions** (exponential duration) and
  **offline gaps** (lognormal — heavy-tailed, so multi-hour and
  overnight gaps are common);
- per-user online fractions are themselves heterogeneous: some users
  have data plans and are nearly always connected, others are
  WiFi-only and connect in bursts;
- online periods carry a transport: WiFi at home/work-like sessions,
  3G otherwise.

The model is lazy like mobility: ``is_online(t)``/``transport(t)``
replay the alternating renewal process up to ``t``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.devices.battery import NetworkKind


@dataclass(frozen=True)
class ConnectivityParams:
    """Tunables of the alternating online/offline renewal process."""

    online_mean_s: float = 2400.0
    offline_median_s: float = 5400.0
    offline_sigma: float = 1.5  # lognormal shape: heavy upper tail
    wifi_share: float = 0.62  # share of online sessions on WiFi
    always_on_share: float = 0.12  # users with cellular data always on

    def __post_init__(self) -> None:
        if self.online_mean_s <= 0 or self.offline_median_s <= 0:
            raise ConfigurationError("session durations must be > 0")
        if not 0.0 <= self.wifi_share <= 1.0:
            raise ConfigurationError("wifi_share must be in [0, 1]")
        if not 0.0 <= self.always_on_share <= 1.0:
            raise ConfigurationError("always_on_share must be in [0, 1]")


@dataclass
class _Session:
    start: float
    end: float
    online: bool
    transport: Optional[NetworkKind]


class ConnectivityModel:
    """Connectivity of one user over simulated time."""

    def __init__(
        self,
        rng: np.random.Generator,
        params: Optional[ConnectivityParams] = None,
        start_time_s: float = 0.0,
    ) -> None:
        self._rng = rng
        self.params = params or ConnectivityParams()
        self.always_on = bool(rng.random() < self.params.always_on_share)
        self._sessions: List[_Session] = []
        self._horizon = float(start_time_s)
        self._cursor = 0
        # start mid-pattern: half the users begin online
        self._next_online = bool(rng.random() < 0.5)
        self._extend_to(start_time_s + 1.0)

    # -- queries ------------------------------------------------------------

    def is_online(self, t: float) -> bool:
        """Whether the device can transmit at time ``t``."""
        if self.always_on:
            return True
        return self._session_at(t).online

    def transport(self, t: float) -> Optional[NetworkKind]:
        """The transport in use at ``t`` (None when offline)."""
        if self.always_on:
            # always-on users still prefer WiFi when a session says so
            session = self._session_at(t)
            if session.online and session.transport is NetworkKind.WIFI:
                return NetworkKind.WIFI
            return NetworkKind.CELL_3G
        return self._session_at(t).transport

    def next_online_at(self, t: float) -> float:
        """Earliest time >= ``t`` at which the device is online."""
        if self.always_on:
            return t
        session = self._session_at(t)
        while not session.online:
            session = self._session_at(session.end)
        return max(t, session.start)

    def online_fraction(self, start: float, end: float) -> float:
        """Fraction of [start, end) spent online."""
        if end <= start:
            raise ConfigurationError("end must be after start")
        if self.always_on:
            return 1.0
        self._extend_to(end)
        online = 0.0
        for session in self._sessions:
            lo = max(session.start, start)
            hi = min(session.end, end)
            if hi > lo and session.online:
                online += hi - lo
        return online / (end - start)

    # -- internals ------------------------------------------------------------

    def _session_at(self, t: float) -> _Session:
        self._extend_to(t)
        # sessions are contiguous; binary search by start time
        lo, hi = 0, len(self._sessions) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._sessions[mid].end <= t:
                lo = mid + 1
            else:
                hi = mid
        return self._sessions[lo]

    def _extend_to(self, t: float) -> None:
        while self._horizon <= t:
            online = self._next_online
            if online:
                duration = float(self._rng.exponential(self.params.online_mean_s))
                transport = (
                    NetworkKind.WIFI
                    if self._rng.random() < self.params.wifi_share
                    else NetworkKind.CELL_3G
                )
            else:
                duration = float(
                    self._rng.lognormal(
                        np.log(self.params.offline_median_s),
                        self.params.offline_sigma,
                    )
                )
                transport = None
            duration = max(duration, 30.0)
            self._sessions.append(
                _Session(
                    start=self._horizon,
                    end=self._horizon + duration,
                    online=online,
                    transport=transport,
                )
            )
            self._horizon += duration
            self._next_online = not online
