"""User mobility: activity states and positions on the city plane.

A semi-Markov model over the ground-truth activities (``still, foot,
bicycle, vehicle, tilting``). Dwell times are exponential with
state-specific means chosen so the long-run time shares match §6.3:
still ~70 %, moving (foot+bicycle+vehicle) <10 % ... with the remainder
absorbed by recognition uncertainty at analysis time.

Positions: each user has home and work anchors; moving states translate
the user toward the current target anchor at the state's speed, with
lateral jitter. Still states pin the user at the nearest anchor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Long-run target time shares of the *true* activity states. After the
#: recognizer's ~20 % unqualified outputs are layered on, the reported
#: distribution matches Figure 21 (still ~70 %, moving < 10 %).
DEFAULT_STATE_SHARES: Dict[str, float] = {
    "still": 0.930,
    "foot": 0.032,
    "vehicle": 0.018,
    "bicycle": 0.006,
    "tilting": 0.014,
}

#: Mean dwell time per state, seconds.
DEFAULT_DWELL_MEANS_S: Dict[str, float] = {
    "still": 3500.0,
    "foot": 700.0,
    "vehicle": 900.0,
    "bicycle": 800.0,
    "tilting": 120.0,
}

#: Movement speed per state, m/s.
STATE_SPEEDS_M_S: Dict[str, float] = {
    "still": 0.0,
    "tilting": 0.0,
    "foot": 1.3,
    "bicycle": 4.0,
    "vehicle": 8.0,
}


@dataclass(frozen=True)
class MobilityParams:
    """Tunable mobility parameters."""

    state_shares: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_STATE_SHARES)
    )
    dwell_means_s: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_DWELL_MEANS_S)
    )

    def __post_init__(self) -> None:
        if set(self.state_shares) != set(DEFAULT_STATE_SHARES):
            raise ConfigurationError(
                f"state_shares must cover exactly {sorted(DEFAULT_STATE_SHARES)}"
            )
        total = sum(self.state_shares.values())
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(f"state shares must sum to 1, got {total}")
        for state, dwell in self.dwell_means_s.items():
            if dwell <= 0:
                raise ConfigurationError(f"dwell mean for {state!r} must be > 0")


class MobilityModel:
    """The mobility of one user.

    The model is *lazy*: callers advance it to the current simulated
    time with :meth:`advance`, and it replays state transitions since
    the last call. This keeps fleet simulations cheap — mobility work is
    only done when an observation actually samples the context.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        home_xy_m: Tuple[float, float],
        work_xy_m: Tuple[float, float],
        params: Optional[MobilityParams] = None,
        start_time_s: float = 0.0,
    ) -> None:
        self._rng = rng
        self.params = params or MobilityParams()
        self.home = (float(home_xy_m[0]), float(home_xy_m[1]))
        self.work = (float(work_xy_m[0]), float(work_xy_m[1]))
        self._time = float(start_time_s)
        self._state = "still"
        self._state_until = self._time + self._draw_dwell("still")
        self._position = np.array(self.home, dtype=float)
        self._target = np.array(self.work, dtype=float)
        self.time_in_state: Dict[str, float] = {s: 0.0 for s in DEFAULT_STATE_SHARES}

    # -- public surface ------------------------------------------------------

    @property
    def state(self) -> str:
        """Current ground-truth activity."""
        return self._state

    def position(self) -> Tuple[float, float]:
        """Current true position (meters)."""
        return (float(self._position[0]), float(self._position[1]))

    def advance(self, now: float) -> None:
        """Advance the model to absolute simulated time ``now``."""
        if now < self._time:
            raise ConfigurationError(
                f"mobility cannot rewind: at {self._time}, asked for {now}"
            )
        while self._time < now:
            step_end = min(now, self._state_until)
            self._integrate(step_end - self._time)
            self._time = step_end
            if self._time >= self._state_until:
                self._transition()

    # -- internals ----------------------------------------------------------------

    def _draw_dwell(self, state: str) -> float:
        return float(self._rng.exponential(self.params.dwell_means_s[state]))

    def _transition(self) -> None:
        # Entry probability of each state is proportional to
        # share / dwell, so the stationary time share of state s is
        # entry_rate(s) x dwell(s) = share(s) exactly. Self-transitions
        # are allowed — they are statistically a dwell extension, and
        # forbidding them would skew the stationary distribution.
        states = sorted(self.params.state_shares)
        weights = np.array(
            [
                self.params.state_shares[s] / self.params.dwell_means_s[s]
                for s in states
            ]
        )
        weights = weights / weights.sum()
        self._state = str(self._rng.choice(states, p=weights))
        self._state_until = self._time + self._draw_dwell(self._state)
        if STATE_SPEEDS_M_S[self._state] > 0:
            # head toward the farther anchor (commute-like movement)
            home_d = np.linalg.norm(self._position - np.array(self.home))
            work_d = np.linalg.norm(self._position - np.array(self.work))
            self._target = np.array(
                self.work if home_d <= work_d else self.home, dtype=float
            )

    def _integrate(self, dt: float) -> None:
        if dt <= 0:
            return
        self.time_in_state[self._state] += dt
        speed = STATE_SPEEDS_M_S[self._state]
        if speed <= 0:
            return
        direction = self._target - self._position
        distance = float(np.linalg.norm(direction))
        travel = speed * dt
        if distance <= travel or distance == 0.0:
            self._position = self._target.copy()
        else:
            self._position = self._position + direction * (travel / distance)
        # lateral jitter keeps trajectories off the straight line
        self._position = self._position + self._rng.normal(0.0, 2.0, size=2)

    def empirical_shares(self) -> Dict[str, float]:
        """Observed time share per state since construction."""
        total = sum(self.time_in_state.values())
        if total == 0:
            return {s: 0.0 for s in self.time_in_state}
        return {s: t / total for s, t in self.time_in_state.items()}
