"""Broker-specific errors."""

from __future__ import annotations

from repro.errors import ReproError


class BrokerError(ReproError):
    """Base class for message-broker errors."""


class ExchangeError(BrokerError):
    """Unknown exchange, redeclaration mismatch, or bad exchange type."""


class QueueError(BrokerError):
    """Unknown queue, redeclaration mismatch, or queue capacity abuse."""


class BindingError(BrokerError):
    """Invalid binding (bad pattern, unknown endpoints, or cycles)."""


class PublishUnroutable(BrokerError):
    """A mandatory publish did not reach any queue."""

    def __init__(self, exchange: str, routing_key: str) -> None:
        super().__init__(
            f"message with routing key {routing_key!r} was not routable "
            f"from exchange {exchange!r}"
        )
        self.exchange = exchange
        self.routing_key = routing_key
