"""The broker: the registry of exchanges, queues, and connections.

This is the process-wide object GoFlow's channel management talks to. It
exposes AMQP-style declaration verbs (idempotent redeclaration with
matching arguments, error on mismatch — like RabbitMQ's PRECONDITION
FAILED) plus routing statistics used by the middleware-throughput bench.

The publish hot path keeps a **route-plan cache**: the resolved queue
list of ``(exchange, routing_key)`` covering the full transitive
exchange-to-exchange traversal of Figure 3. Entries carry the topology
version at which they were computed; any bind/unbind/declare/delete
bumps the version, so stale plans are never served. The cache is a
bounded LRU: per-user routing keys (``Z*-0.NoiseObservation`` at
23M-observation scale) can be unbounded in number, cached plans cannot.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro import concurrency
from repro.broker.errors import BrokerError, ExchangeError, QueueError
from repro.broker.exchange import Exchange, ExchangeType
from repro.broker.faults import FaultInjector
from repro.broker.message import Message
from repro.broker.queue import MessageQueue
from repro.broker.connection import Connection

#: Default bound on cached route plans.
DEFAULT_ROUTE_CACHE_SIZE = 4096


@dataclass
class BrokerStats:
    """Lifetime broker counters."""

    publishes: int = 0
    routed: int = 0
    unroutable: int = 0
    connections_opened: int = 0
    route_cache_hits: int = 0
    route_cache_misses: int = 0
    topic_cache_hits: int = 0
    topic_cache_misses: int = 0


class Broker:
    """An in-process AMQP-style broker.

    Args:
        clock: optional zero-argument callable returning simulated time;
            defaults to a constant 0.0 so the broker also works outside a
            simulation.
        route_cache_size: LRU bound on the route-plan cache (``<= 0``
            disables route-plan caching entirely).
        faults: optional :class:`~repro.broker.faults.FaultInjector`;
            may also be installed after construction with
            :meth:`install_faults`.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        route_cache_size: int = DEFAULT_ROUTE_CACHE_SIZE,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self._clock = clock or (lambda: 0.0)
        # one topology lock covers exchanges, bindings, the route-plan
        # cache, connections and the delayed-delivery list. It is NEVER
        # held while a queue is enqueued into (lock hierarchy: broker
        # before queue never happens; queue -> broker does, via DLX
        # republish from a dispatch callback).
        self._lock = concurrency.make_rlock()
        self._exchanges: Dict[str, Exchange] = {}
        self._queues: Dict[str, MessageQueue] = {}
        self._connections: Dict[str, Connection] = {}
        self._connection_ids = itertools.count(1)
        self.faults = faults
        self._delayed: List[Tuple[List[MessageQueue], Message, float]] = []
        # delivery taps observe every (queue, message) the broker took
        # responsibility for, *after* the enqueue (and therefore after
        # the inline consumer dispatch) completed — the streaming
        # plane's post-confirm hook. Registration is guarded by the
        # broker lock; the calls themselves run outside it.
        self._delivery_taps: List[Callable[[str, Message], None]] = []
        self.stats = BrokerStats()
        self._route_cache_size = route_cache_size
        self._route_cache: "OrderedDict[Tuple[str, str], Tuple[int, List[MessageQueue]]]" = (
            OrderedDict()
        )
        self._topology_version = 0
        # the default (nameless) direct exchange routes straight to the
        # queue whose name equals the routing key, like AMQP's "".
        self._default_exchange = self._new_exchange("(default)", ExchangeType.DIRECT)

    def now(self) -> float:
        """Current simulated time according to the broker's clock."""
        return self._clock()

    # -- fault injection -------------------------------------------------------

    def install_faults(self, injector: Optional[FaultInjector]) -> None:
        """Activate (or, with None, deactivate) fault injection.

        Deactivating releases any still-held delayed deliveries so no
        message is stranded.
        """
        if injector is None:
            self.release_delayed(force=True)
        self.faults = injector

    def release_delayed(self, force: bool = False) -> int:
        """Enqueue delayed deliveries whose hold expired; returns count.

        Called automatically on every publish; call with ``force=True``
        to drain everything regardless of release time (e.g. at the end
        of a simulation).
        """
        with self._lock:
            if not self._delayed:
                return 0
            now = self._clock()
            still_held = []
            releasable = []
            for entry in self._delayed:
                if force or entry[2] <= now:
                    releasable.append(entry)
                else:
                    still_held.append(entry)
            self._delayed = still_held
        # enqueue outside the broker lock: dispatch callbacks run under
        # the queue lock and may publish back into the broker.
        for queues, message, _ in releasable:
            for queue in queues:
                queue.enqueue(message)
                self._fire_delivery_taps(queue, message)
        return len(releasable)

    # -- delivery taps ---------------------------------------------------------

    def add_delivery_tap(self, tap: Callable[[str, Message], None]) -> None:
        """Register a post-confirm delivery observer.

        ``tap(queue_name, message)`` fires once per queue a published
        message reached, strictly after that queue's enqueue returned —
        by then the publish was confirmed and any inline auto-ack
        consumer has already dispatched. Taps run outside every broker
        lock and must not raise.
        """
        with self._lock:
            self._delivery_taps.append(tap)

    def remove_delivery_tap(self, tap: Callable[[str, Message], None]) -> None:
        """Unregister a delivery tap (no-op when absent)."""
        with self._lock:
            try:
                self._delivery_taps.remove(tap)
            except ValueError:
                pass

    def _fire_delivery_taps(self, queue: MessageQueue, message: Message) -> None:
        if not self._delivery_taps:
            return
        with self._lock:
            taps = list(self._delivery_taps)
        for tap in taps:
            tap(queue.name, message)

    @property
    def delayed_count(self) -> int:
        """Deliveries currently held back by the fault injector."""
        with self._lock:
            return len(self._delayed)

    # -- topology versioning -------------------------------------------------

    def _new_exchange(
        self, name: str, type: ExchangeType, durable: bool = True
    ) -> Exchange:
        exchange = Exchange(
            name, type, durable=durable, stats=self.stats, lock=self._lock
        )
        exchange._on_change = self._bump_topology
        return exchange

    def _bump_topology(self) -> None:
        """Invalidate every cached route plan (lazily, via the version)."""
        with self._lock:
            self._topology_version += 1

    @property
    def topology_version(self) -> int:
        """Monotone counter bumped on any bind/unbind/declare/delete."""
        with self._lock:
            return self._topology_version

    def route_cache_info(self) -> Dict[str, int]:
        """Observability snapshot of the route-plan cache."""
        with self._lock:
            return {
                "size": len(self._route_cache),
                "capacity": self._route_cache_size,
                "hits": self.stats.route_cache_hits,
                "misses": self.stats.route_cache_misses,
                "topology_version": self._topology_version,
            }

    def stats_snapshot(self) -> BrokerStats:
        """A coherent copy of the lifetime counters."""
        with self._lock:
            return replace(self.stats)

    # -- declaration ---------------------------------------------------------

    def declare_exchange(
        self, name: str, type: ExchangeType, durable: bool = True
    ) -> Exchange:
        """Declare an exchange; idempotent when arguments match."""
        with self._lock:
            existing = self._exchanges.get(name)
            if existing is not None:
                if existing.type is not type:
                    raise ExchangeError(
                        f"exchange {name!r} already declared as {existing.type.value}, "
                        f"cannot redeclare as {type.value}"
                    )
                return existing
            exchange = self._new_exchange(name, type, durable=durable)
            self._exchanges[name] = exchange
            self._bump_topology()
            return exchange

    def declare_queue(
        self,
        name: str,
        max_length: Optional[int] = None,
        message_ttl_s: Optional[float] = None,
        dead_letter_exchange: Optional[str] = None,
    ) -> MessageQueue:
        """Declare a queue; idempotent when arguments match.

        ``dead_letter_exchange`` names an exchange that receives every
        message this queue drops (TTL expiry, overflow, requeue-less
        rejection); the drop reason travels in the ``x-death`` header.
        """
        with self._lock:
            existing = self._queues.get(name)
            if existing is not None:
                if (
                    existing.max_length != max_length
                    or existing.message_ttl_s != message_ttl_s
                ):
                    raise QueueError(
                        f"queue {name!r} already declared with different "
                        "arguments; cannot redeclare"
                    )
                return existing
            dead_letter = None
            if dead_letter_exchange is not None:
                if dead_letter_exchange == name:
                    raise QueueError("a queue cannot dead-letter to itself")

                def dead_letter(message: Message, reason: str) -> None:
                    if not self.has_exchange(dead_letter_exchange):
                        return  # DLX deleted; drops become silent, like AMQP
                    forwarded = message.copy_with(
                        headers={**message.headers, "x-death": reason}
                    )
                    self.publish(dead_letter_exchange, forwarded)

            queue = MessageQueue(
                name,
                max_length=max_length,
                clock=self._clock,
                message_ttl_s=message_ttl_s,
                dead_letter=dead_letter,
            )
            self._queues[name] = queue
            # implicit binding on the default exchange by queue name
            self._default_exchange.bind(queue, key=name)
            return queue

    def delete_exchange(self, name: str) -> None:
        """Delete an exchange and every binding referencing it.

        Other exchanges' bindings into the deleted exchange are swept so
        no publish keeps flowing through a dead hop.
        """
        with self._lock:
            if name not in self._exchanges:
                raise ExchangeError(f"unknown exchange {name!r}")
            del self._exchanges[name]
            for other in self._exchanges.values():
                other._drop_destination("exchange", name)
            self._bump_topology()

    def delete_queue(self, name: str) -> int:
        """Delete a queue; returns the number of ready messages dropped.

        Every binding referencing the queue — the implicit default-
        exchange binding and any explicit ones in other exchanges — is
        removed, so a deleted queue can never receive routed messages.
        A publish racing the delete may still reach the queue's ready
        list before the purge; those messages are dropped with it.
        """
        with self._lock:
            queue = self._queues.pop(name, None)
            if queue is None:
                raise QueueError(f"unknown queue {name!r}")
            self._default_exchange._drop_destination("queue", name)
            for exchange in self._exchanges.values():
                exchange._drop_destination("queue", name)
            self._bump_topology()
        # purge outside the broker lock: it takes the queue lock, and a
        # dispatch callback holding that lock may be publishing here.
        return queue.purge()

    # -- lookup ------------------------------------------------------------------

    def get_exchange(self, name: str) -> Exchange:
        """The exchange named ``name`` ('' for the default exchange)."""
        if name == "":
            return self._default_exchange
        with self._lock:
            exchange = self._exchanges.get(name)
        if exchange is None:
            raise ExchangeError(f"unknown exchange {name!r}")
        return exchange

    def get_queue(self, name: str) -> MessageQueue:
        """The queue named ``name``."""
        with self._lock:
            queue = self._queues.get(name)
        if queue is None:
            raise QueueError(f"unknown queue {name!r}")
        return queue

    def has_exchange(self, name: str) -> bool:
        """Whether an exchange named ``name`` exists."""
        with self._lock:
            return name in self._exchanges

    def has_queue(self, name: str) -> bool:
        """Whether a queue named ``name`` exists."""
        with self._lock:
            return name in self._queues

    def exchange_names(self) -> List[str]:
        """Names of all declared exchanges."""
        with self._lock:
            return list(self._exchanges)

    def queue_names(self) -> List[str]:
        """Names of all declared queues."""
        with self._lock:
            return list(self._queues)

    # -- binding ----------------------------------------------------------------

    def bind_queue(self, exchange: str, queue: str, key: str = "") -> None:
        """Bind ``queue`` to ``exchange`` with binding ``key``."""
        self.get_exchange(exchange).bind(self.get_queue(queue), key=key)

    def bind_exchange(self, source: str, destination: str, key: str = "") -> None:
        """Bind exchange ``destination`` to exchange ``source``."""
        self.get_exchange(source).bind(self.get_exchange(destination), key=key)

    def unbind_queue(self, exchange: str, queue: str, key: str = "") -> None:
        """Remove a queue binding."""
        self.get_exchange(exchange).unbind(self.get_queue(queue), key=key)

    def unbind_exchange(self, source: str, destination: str, key: str = "") -> None:
        """Remove an exchange-to-exchange binding."""
        self.get_exchange(source).unbind(self.get_exchange(destination), key=key)

    # -- publish ------------------------------------------------------------------

    def publish(self, exchange: str, message: Message) -> int:
        """Route ``message`` through ``exchange``; returns queues reached.

        Route resolution is served from the route-plan cache when the
        topology has not changed since the plan was computed; otherwise
        the exchange graph is walked once and the plan is (re)cached.

        With a fault injector installed, queue dispatch itself can
        misbehave: a routed message may be enqueued twice (duplicate
        delivery) or held back for a while (delayed delivery). Both
        count as *routed* — the broker took responsibility — which is
        exactly why the ingest side needs idempotence.
        """
        faults = self.faults
        if faults is not None:
            self.release_delayed()
        duplicate = False
        with self._lock:
            target = self.get_exchange(exchange)
            cache = self._route_cache
            cache_key = (exchange, message.routing_key)
            entry = cache.get(cache_key)
            if entry is not None and entry[0] == self._topology_version:
                cache.move_to_end(cache_key)
                queues = entry[1]
                target.published += 1
                self.stats.route_cache_hits += 1
            else:
                queues = target.route(message)
                self.stats.route_cache_misses += 1
                if self._route_cache_size > 0:
                    cache[cache_key] = (self._topology_version, queues)
                    if len(cache) > self._route_cache_size:
                        cache.popitem(last=False)
            self.stats.publishes += 1
            if queues:
                self.stats.routed += 1
            else:
                self.stats.unroutable += 1
            if faults is not None and queues:
                delay = faults.delay_delivery()
                if delay is not None:
                    self._delayed.append(
                        (list(queues), message, self._clock() + delay)
                    )
                    return len(queues)
                duplicate = faults.duplicate_delivery()
        # dispatch outside the broker lock: consumer callbacks run under
        # the queue lock and may publish back into this broker.
        for queue in queues:
            queue.enqueue(message)
            self._fire_delivery_taps(queue, message)
            if duplicate:
                duplicated = message.copy_with()
                queue.enqueue(duplicated)
                self._fire_delivery_taps(queue, duplicated)
        return len(queues)

    # -- connections ------------------------------------------------------------------

    def connect(self, client_id: Optional[str] = None) -> Connection:
        """Open a connection for ``client_id`` (auto-generated if omitted)."""
        connection_id = client_id or f"conn-{next(self._connection_ids)}"
        with self._lock:
            if self.faults is not None and self.faults.refuse_connect():
                raise BrokerError(f"injected connect refusal for {connection_id!r}")
            if connection_id in self._connections:
                raise BrokerError(f"connection {connection_id!r} already open")
            connection = Connection(self, connection_id)
            self._connections[connection_id] = connection
            self.stats.connections_opened += 1
            return connection

    def connection_count(self) -> int:
        """Number of currently open connections."""
        with self._lock:
            return len(self._connections)

    def drop_connection(self, connection_id: str) -> None:
        """Forcibly close a connection (fault injection, admin kill)."""
        with self._lock:
            connection = self._connections.get(connection_id)
        if connection is not None:
            connection.close()

    def _forget_connection(self, connection_id: str) -> None:
        with self._lock:
            self._connections.pop(connection_id, None)
