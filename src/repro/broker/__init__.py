"""In-process AMQP-style message broker.

A faithful, from-scratch implementation of the RabbitMQ subset the GoFlow
middleware relies on (paper §3.2, Figure 3):

- **exchanges** of type ``direct``, ``fanout`` and ``topic``;
- **queues** with FIFO delivery, consumer prefetch, acknowledgements,
  negative-acknowledgements with requeue, and optional bounded length;
- **bindings** from exchanges to queues *and to other exchanges*
  (exchange-to-exchange bindings implement the client → app → GoFlow
  routing chain of Figure 3);
- AMQP **topic patterns** where ``*`` matches exactly one word and ``#``
  matches zero or more words;
- **connections/channels** with publisher confirms, and a per-session
  buffering mode that models RabbitMQ's handling of flaky mobile links.

Everything is synchronous and deterministic: a publish either routes to
queues immediately or is dropped (optionally reported via the mandatory
flag), and consumers are invoked inline in registration order.
"""

from repro.broker.errors import (
    BindingError,
    BrokerError,
    ExchangeError,
    PublishUnroutable,
    QueueError,
)
from repro.broker.faults import FaultInjector, FaultPlan, FaultStats
from repro.broker.message import Delivery, Message
from repro.broker.topic import TopicMatcher, topic_matches, topic_matches_raw
from repro.broker.exchange import Exchange, ExchangeType
from repro.broker.queue import Consumer, MessageQueue
from repro.broker.channel import Channel
from repro.broker.connection import Connection
from repro.broker.broker import Broker

__all__ = [
    "Broker",
    "Channel",
    "Connection",
    "Consumer",
    "Delivery",
    "Exchange",
    "ExchangeType",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "Message",
    "MessageQueue",
    "TopicMatcher",
    "topic_matches",
    "topic_matches_raw",
    "BrokerError",
    "ExchangeError",
    "QueueError",
    "BindingError",
    "PublishUnroutable",
]
