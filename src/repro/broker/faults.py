"""Deterministic fault injection for the broker.

The paper's deployment ran for 10 months against real mobile links:
connections died mid-batch, publisher confirms went missing, and the
at-least-once recovery path redelivered data. This module reproduces
those failure modes *deterministically* so the reliability layer can be
tested (and benchmarked) without flaky tests: a :class:`FaultPlan` is a
pure description of fault rates, a :class:`FaultInjector` draws from a
seeded RNG — same seed, same call sequence, same faults.

Injection points (wired by the broker when an injector is installed):

- :meth:`Broker.connect <repro.broker.broker.Broker.connect>` — connection
  attempts can be refused (``connect_refusal_rate``);
- :meth:`Channel.basic_publish <repro.broker.channel.Channel.basic_publish>`
  — a publish can fail outright (``publish_error_rate``), take the whole
  connection down mid-batch (``connection_drop_rate``), or succeed but
  have its publisher confirm nacked (``confirm_nack_rate``);
- queue dispatch in :meth:`Broker.publish
  <repro.broker.broker.Broker.publish>` — a routed message can be
  enqueued twice (``duplicate_rate``, the at-least-once redelivery case)
  or held back and enqueued ``delay_s`` simulated seconds later
  (``delay_rate``, the congested-link case).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro import concurrency
from repro.errors import ConfigurationError

#: publish_action outcomes
PUBLISH_OK = "ok"
PUBLISH_ERROR = "error"
PUBLISH_DROP_CONNECTION = "drop_connection"

_RATE_FIELDS = (
    "connect_refusal_rate",
    "connection_drop_rate",
    "publish_error_rate",
    "confirm_nack_rate",
    "duplicate_rate",
    "delay_rate",
)


@dataclass(frozen=True)
class FaultPlan:
    """A declarative description of what should go wrong, and how often.

    All rates are probabilities in ``[0, 1]`` evaluated independently at
    their injection point. The plan itself is inert data; hand it to a
    :class:`FaultInjector` (or ``Broker.install_faults``) to activate it.

    Attributes:
        seed: RNG seed — the whole point: two runs with the same plan
            and the same traffic see the same faults.
        connect_refusal_rate: probability a ``Broker.connect`` raises.
        connection_drop_rate: probability a publish kills its connection
            mid-batch (the message is lost, later batch documents never
            leave the client).
        publish_error_rate: probability a single publish raises without
            delivering (the channel survives).
        confirm_nack_rate: probability a *delivered* publish reports
            ``confirmed=False`` — the classic duplicate generator, since
            a correct client must resend.
        duplicate_rate: probability a routed message is enqueued twice.
        delay_rate: probability a routed message is held for
            ``delay_s`` simulated seconds before enqueueing.
        delay_s: hold duration for delayed deliveries.
    """

    seed: int = 0
    connect_refusal_rate: float = 0.0
    connection_drop_rate: float = 0.0
    publish_error_rate: float = 0.0
    confirm_nack_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    delay_s: float = 60.0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {rate}")
        if self.delay_s <= 0:
            raise ConfigurationError(f"delay_s must be > 0, got {self.delay_s}")


@dataclass
class FaultStats:
    """How many faults of each kind actually fired."""

    connects_refused: int = 0
    connections_dropped: int = 0
    publish_errors: int = 0
    confirms_nacked: int = 0
    duplicated: int = 0
    delayed: int = 0

    def total(self) -> int:
        """Total faults fired, any kind."""
        return (
            self.connects_refused
            + self.connections_dropped
            + self.publish_errors
            + self.confirms_nacked
            + self.duplicated
            + self.delayed
        )


@dataclass
class FaultInjector:
    """Draws fault decisions from a plan's seeded RNG and counts them.

    Decision points are serialized by an internal lock so a draw and
    its counter increment are one atomic step. Under single-threaded
    traffic the draw sequence is exactly the plan's seeded sequence;
    under concurrent traffic the *interleaving* of draws follows thread
    scheduling (the per-run fault counts remain internally consistent,
    which is what the concurrency invariants check).
    """

    plan: FaultPlan
    stats: FaultStats = field(default_factory=FaultStats)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.plan.seed)
        self._lock = concurrency.make_rlock()

    # -- decision points ------------------------------------------------------

    def refuse_connect(self) -> bool:
        """Whether this ``Broker.connect`` call should be refused."""
        with self._lock:
            if self.plan.connect_refusal_rate and (
                self._rng.random() < self.plan.connect_refusal_rate
            ):
                self.stats.connects_refused += 1
                return True
            return False

    def publish_action(self) -> str:
        """Fate of one ``basic_publish``: ok, error, or connection drop."""
        with self._lock:
            if self.plan.connection_drop_rate and (
                self._rng.random() < self.plan.connection_drop_rate
            ):
                self.stats.connections_dropped += 1
                return PUBLISH_DROP_CONNECTION
            if self.plan.publish_error_rate and (
                self._rng.random() < self.plan.publish_error_rate
            ):
                self.stats.publish_errors += 1
                return PUBLISH_ERROR
            return PUBLISH_OK

    def nack_confirm(self) -> bool:
        """Whether a delivered publish should report an unconfirmed seq."""
        with self._lock:
            if self.plan.confirm_nack_rate and (
                self._rng.random() < self.plan.confirm_nack_rate
            ):
                self.stats.confirms_nacked += 1
                return True
            return False

    def duplicate_delivery(self) -> bool:
        """Whether a routed message should be enqueued twice."""
        with self._lock:
            if self.plan.duplicate_rate and (
                self._rng.random() < self.plan.duplicate_rate
            ):
                self.stats.duplicated += 1
                return True
            return False

    def delay_delivery(self) -> Optional[float]:
        """Hold duration for this delivery, or None to deliver now."""
        with self._lock:
            if self.plan.delay_rate and (self._rng.random() < self.plan.delay_rate):
                self.stats.delayed += 1
                return self.plan.delay_s
            return None

    # -- observability --------------------------------------------------------

    def info(self) -> Dict[str, int]:
        """Counters of faults fired so far (for ``middleware_stats``)."""
        with self._lock:
            return {
                "connects_refused": self.stats.connects_refused,
                "connections_dropped": self.stats.connections_dropped,
                "publish_errors": self.stats.publish_errors,
                "confirms_nacked": self.stats.confirms_nacked,
                "duplicated": self.stats.duplicated,
                "delayed": self.stats.delayed,
            }
