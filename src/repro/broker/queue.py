"""Message queues with consumers, acks, prefetch, TTL and dead-lettering.

Queues are strictly FIFO. Delivery happens eagerly: when a message is
enqueued and a consumer has prefetch credit, the consumer callback runs
inline. Unacknowledged deliveries are tracked per consumer; a nack with
``requeue=True`` puts the message back at the head of the queue with the
redelivered flag set (at-least-once semantics, like RabbitMQ).

Two RabbitMQ policies that matter for mobile workloads are modelled:

- **message TTL**: a disconnected client's queue must not grow stale
  forever; expired messages are dropped lazily (checked whenever the
  head of the queue is touched, which is sufficient because FIFO order
  makes enqueue times monotone);
- **dead-lettering**: messages dropped by TTL expiry, overflow, or
  requeue-less rejection can be routed to a dead-letter handler (the
  broker wires this to a dead-letter exchange).

Thread safety: every queue guards its ready list, consumer registry and
counters with one re-entrant lock, so concurrent publishers interleave
at message granularity and FIFO dispatch stays serial per queue (the
ordering guarantee RabbitMQ gives per queue). Consumer callbacks run
*under* the queue lock — re-entrant enqueues from a callback (e.g. a
dead-letter republish that routes back here) are legal for the same
thread, and a callback that publishes into *another* queue follows the
broker's lock hierarchy (the broker lock is never held while a queue
lock is taken, see ``docs/ARCHITECTURE.md``).
"""

from __future__ import annotations

import itertools
from collections import OrderedDict, deque
from dataclasses import dataclass, field, replace
from typing import Callable, Deque, Dict, Optional, Tuple

from repro import concurrency
from repro.broker.errors import QueueError
from repro.broker.message import Delivery, Message

#: Signature of a dead-letter handler: (message, reason).
DeadLetterHandler = Callable[[Message, str], None]


@dataclass
class Consumer:
    """A registered consumer on a queue.

    Attributes:
        tag: unique consumer tag within the broker.
        callback: invoked with each :class:`Delivery`.
        prefetch: max unacknowledged deliveries in flight (0 = unlimited).
        auto_ack: when True, deliveries are acknowledged implicitly.
    """

    tag: str
    callback: Callable[[Delivery], None]
    prefetch: int = 0
    auto_ack: bool = False
    unacked: "OrderedDict[int, Delivery]" = field(default_factory=OrderedDict)

    def has_credit(self) -> bool:
        """Whether the consumer may receive another delivery."""
        return self.prefetch == 0 or len(self.unacked) < self.prefetch


@dataclass
class QueueStats:
    """Lifetime counters for a queue."""

    enqueued: int = 0
    delivered: int = 0
    acked: int = 0
    requeued: int = 0
    dropped_overflow: int = 0
    expired: int = 0
    dead_lettered: int = 0


class MessageQueue:
    """A FIFO queue with consumer dispatch.

    Args:
        name: queue name (unique within the broker).
        max_length: optional bound; when full, the **oldest ready**
            message is dropped (RabbitMQ's default overflow behaviour).
        clock: optional callable returning the current simulated time,
            stamped on deliveries and used for TTL expiry.
        message_ttl_s: optional per-message time-to-live.
        dead_letter: optional handler receiving (message, reason) for
            every message the queue drops.
    """

    _delivery_tags = itertools.count(1)

    def __init__(
        self,
        name: str,
        max_length: Optional[int] = None,
        clock: Optional[Callable[[], float]] = None,
        message_ttl_s: Optional[float] = None,
        dead_letter: Optional[DeadLetterHandler] = None,
    ) -> None:
        if max_length is not None and max_length <= 0:
            raise QueueError(f"max_length must be positive, got {max_length}")
        if message_ttl_s is not None and message_ttl_s <= 0:
            raise QueueError(f"message_ttl_s must be positive, got {message_ttl_s}")
        self.name = name
        self.max_length = max_length
        self.message_ttl_s = message_ttl_s
        self._clock = clock
        self._dead_letter = dead_letter
        self._ready: Deque[Tuple[Message, float]] = deque()
        self._consumers: "OrderedDict[str, Consumer]" = OrderedDict()
        self._push_cache: Optional[list] = None  # memoized push-consumer list
        self._rr: int = 0  # round-robin cursor over consumers
        self._redelivered_ids: set = set()
        self._lock = concurrency.make_rlock()
        self.stats = QueueStats()

    # -- state inspection ---------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            self._expire_head()
            return len(self._ready)

    @property
    def ready_count(self) -> int:
        """Messages waiting in the queue (not yet delivered)."""
        with self._lock:
            self._expire_head()
            return len(self._ready)

    @property
    def unacked_count(self) -> int:
        """Deliveries awaiting acknowledgement across all consumers."""
        with self._lock:
            return sum(len(c.unacked) for c in self._consumers.values())

    def stats_snapshot(self) -> QueueStats:
        """A coherent copy of the counters (no torn mid-dispatch reads)."""
        with self._lock:
            return replace(self.stats)

    @property
    def consumer_count(self) -> int:
        """Number of registered consumers."""
        return len(self._consumers)

    # -- time & drop handling -------------------------------------------------

    def _now(self) -> float:
        return self._clock() if self._clock else 0.0

    def _drop(self, message: Message, reason: str) -> None:
        if self._dead_letter is not None:
            self.stats.dead_lettered += 1
            self._dead_letter(message, reason)

    def _expire_head(self) -> None:
        """Lazily drop expired messages from the head of the queue."""
        if self.message_ttl_s is None or not self._ready:
            return
        now = self._now()
        while self._ready and now - self._ready[0][1] > self.message_ttl_s:
            message, _ = self._ready.popleft()
            self.stats.expired += 1
            self._drop(message, "expired")

    # -- enqueue / deliver ----------------------------------------------------

    def enqueue(self, message: Message) -> None:
        """Append a message and dispatch to consumers if possible."""
        with self._lock:
            self._expire_head()
            if self.max_length is not None and len(self._ready) >= self.max_length:
                dropped, _ = self._ready.popleft()
                self.stats.dropped_overflow += 1
                self._drop(dropped, "maxlen")
            self._ready.append((message, self._now()))
            self.stats.enqueued += 1
            self._dispatch()

    def get(self, auto_ack: bool = True) -> Optional[Delivery]:
        """Synchronously pull one message (AMQP basic.get semantics).

        Returns None when the queue is empty. With ``auto_ack=False`` the
        caller must later :meth:`ack` or :meth:`nack` through the pull
        consumer registered under the tag ``"<queue>.get"``.
        """
        with self._lock:
            self._expire_head()
            if not self._ready:
                return None
            message, _ = self._ready.popleft()
            delivery = self._make_delivery(
                message, redelivered=message.message_id in self._redelivered_ids
            )
            self.stats.delivered += 1
            if auto_ack:
                self.stats.acked += 1
            else:
                puller = self._consumers.get(self._pull_tag())
                if puller is None:
                    puller = Consumer(tag=self._pull_tag(), callback=lambda d: None)
                    self._consumers[self._pull_tag()] = puller
                puller.unacked[delivery.delivery_tag] = delivery
            return delivery

    def add_consumer(
        self,
        tag: str,
        callback: Callable[[Delivery], None],
        prefetch: int = 0,
        auto_ack: bool = False,
    ) -> Consumer:
        """Register a push consumer and start dispatching to it."""
        with self._lock:
            if tag in self._consumers:
                raise QueueError(f"consumer tag {tag!r} already registered on {self.name!r}")
            if prefetch < 0:
                raise QueueError(f"prefetch must be >= 0, got {prefetch}")
            consumer = Consumer(tag=tag, callback=callback, prefetch=prefetch, auto_ack=auto_ack)
            self._consumers[tag] = consumer
            self._push_cache = None
            self._dispatch()
            return consumer

    def remove_consumer(self, tag: str, requeue_unacked: bool = True) -> None:
        """Deregister a consumer, optionally requeueing its unacked messages."""
        with self._lock:
            consumer = self._consumers.pop(tag, None)
            if consumer is None:
                raise QueueError(f"no consumer {tag!r} on queue {self.name!r}")
            self._push_cache = None
            if requeue_unacked:
                now = self._now()
                for delivery in reversed(consumer.unacked.values()):
                    self._redelivered_ids.add(delivery.message.message_id)
                    self._ready.appendleft((delivery.message, now))
                    self.stats.requeued += 1
                self._dispatch()

    # -- acknowledgement -------------------------------------------------------

    def ack(self, delivery_tag: int) -> None:
        """Acknowledge a delivery; frees prefetch credit."""
        with self._lock:
            consumer = self._find_owner(delivery_tag)
            del consumer.unacked[delivery_tag]
            self.stats.acked += 1
            self._dispatch()

    def nack(self, delivery_tag: int, requeue: bool = True) -> None:
        """Reject a delivery; requeue it or dead-letter it."""
        with self._lock:
            consumer = self._find_owner(delivery_tag)
            delivery = consumer.unacked.pop(delivery_tag)
            if requeue:
                self._redelivered_ids.add(delivery.message.message_id)
                self._ready.appendleft((delivery.message.copy_with(), self._now()))
                self.stats.requeued += 1
            else:
                self._drop(delivery.message, "rejected")
            self._dispatch()

    def purge(self) -> int:
        """Drop all ready messages; returns how many were dropped."""
        with self._lock:
            count = len(self._ready)
            self._ready.clear()
            return count

    # -- internals ---------------------------------------------------------------

    def _pull_tag(self) -> str:
        return f"{self.name}.get"

    def _find_owner(self, delivery_tag: int) -> Consumer:
        for consumer in self._consumers.values():
            if delivery_tag in consumer.unacked:
                return consumer
        raise QueueError(
            f"unknown delivery tag {delivery_tag} on queue {self.name!r} "
            "(already acked, or never delivered here)"
        )

    def _make_delivery(self, message: Message, redelivered: bool) -> Delivery:
        return Delivery(
            message=message,
            delivery_tag=next(self._delivery_tags),
            queue_name=self.name,
            redelivered=redelivered,
            delivered_at=self._clock() if self._clock else None,
        )

    def _push_consumers(self) -> list:
        cached = self._push_cache
        if cached is None:
            pull_tag = self._pull_tag()
            cached = [c for t, c in self._consumers.items() if t != pull_tag]
            self._push_cache = cached
        return cached

    def _dispatch(self) -> None:
        """Deliver ready messages to consumers round-robin while credit lasts.

        Always called with the queue lock held; callbacks therefore run
        under it, which is what keeps per-queue delivery order serial.
        """
        consumers = self._push_consumers()
        if not consumers:
            return
        if len(consumers) == 1:
            # fast path: no round-robin bookkeeping for the common
            # single-consumer queue (every GoFlow/client queue).
            consumer = consumers[0]
            while True:
                self._expire_head()
                if not self._ready or not consumer.has_credit():
                    return
                message, _ = self._ready.popleft()
                delivery = self._make_delivery(
                    message,
                    redelivered=message.message_id in self._redelivered_ids,
                )
                self.stats.delivered += 1
                if consumer.auto_ack:
                    self.stats.acked += 1
                else:
                    consumer.unacked[delivery.delivery_tag] = delivery
                consumer.callback(delivery)
        progress = True
        while progress:
            self._expire_head()
            if not self._ready:
                break
            progress = False
            for offset in range(len(consumers)):
                if not self._ready:
                    break
                consumer = consumers[(self._rr + offset) % len(consumers)]
                if not consumer.has_credit():
                    continue
                message, _ = self._ready.popleft()
                delivery = self._make_delivery(
                    message,
                    redelivered=message.message_id in self._redelivered_ids,
                )
                self.stats.delivered += 1
                if consumer.auto_ack:
                    self.stats.acked += 1
                else:
                    consumer.unacked[delivery.delivery_tag] = delivery
                self._rr = (self._rr + offset + 1) % len(consumers)
                consumer.callback(delivery)
                progress = True
                # restart the round to honour round-robin fairness
                break
