"""Channels: the publish/consume surface of a connection.

A channel wraps the broker with AMQP-flavoured verbs (``basic_publish``,
``basic_consume``, ``basic_ack``, ...). Publisher confirms are modelled:
in confirm mode every publish returns a monotonically increasing sequence
number, and the channel records which publishes were routed to at least
one queue.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional, TYPE_CHECKING

from repro import concurrency
from repro.broker.errors import BrokerError, PublishUnroutable
from repro.broker.message import Delivery, Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.broker.broker import Broker


class Channel:
    """A lightweight multiplexed session over a connection."""

    _consumer_tags = itertools.count(1)

    def __init__(self, broker: "Broker", connection_id: str, channel_id: int) -> None:
        self._broker = broker
        self.connection_id = connection_id
        self.channel_id = channel_id
        self._open = True
        self._confirm_mode = False
        self._publish_seq = itertools.count(1)
        self._confirms: Dict[int, bool] = {}
        self._consumer_queues: Dict[str, str] = {}  # consumer tag -> queue name
        # guards confirm state and the consumer registry; sharing one
        # channel across client threads is legal (confirm seqs stay
        # unique, records never tear), though AMQP clients usually don't.
        self._lock = concurrency.make_rlock()

    # -- lifecycle ---------------------------------------------------------

    @property
    def is_open(self) -> bool:
        """Whether the channel accepts operations."""
        return self._open

    def close(self) -> None:
        """Close the channel; cancels its consumers (unacked requeue)."""
        with self._lock:
            if not self._open:
                return
            self._open = False
            doomed = list(self._consumer_queues.items())
            self._consumer_queues.clear()
        for tag, queue_name in doomed:
            try:
                self._broker.get_queue(queue_name).remove_consumer(
                    tag, requeue_unacked=True
                )
            except BrokerError:
                pass  # queue deleted underneath us

    def _require_open(self) -> None:
        if not self._open:
            raise BrokerError(
                f"channel {self.channel_id} on connection {self.connection_id!r} is closed"
            )

    # -- publishing ----------------------------------------------------------

    def confirm_select(self) -> None:
        """Enable publisher confirms on this channel."""
        self._require_open()
        self._confirm_mode = True

    def basic_publish(
        self,
        exchange: str,
        routing_key: str,
        body: object,
        headers: Optional[dict] = None,
        mandatory: bool = False,
        timestamp: Optional[float] = None,
    ) -> Optional[int]:
        """Publish ``body`` to ``exchange`` with ``routing_key``.

        Returns the confirm sequence number when confirm mode is on,
        otherwise None. With ``mandatory=True`` an unroutable publish
        raises :class:`PublishUnroutable` (basic.return semantics).

        With a fault injector installed on the broker, a publish may
        raise (lost before routing), take the whole connection down, or
        deliver normally yet report an unconfirmed sequence number — the
        three link failures the client's retry layer must absorb.
        """
        self._require_open()
        faults = self._broker.faults
        if faults is not None:
            action = faults.publish_action()
            if action == "drop_connection":
                self._broker.drop_connection(self.connection_id)
                raise BrokerError(
                    f"injected connection drop on {self.connection_id!r}"
                )
            if action == "error":
                raise BrokerError(
                    f"injected publish failure on {self.connection_id!r}"
                )
        message = Message(
            routing_key=routing_key,
            body=body,
            headers=dict(headers or {}),
            timestamp=timestamp if timestamp is not None else self._broker.now(),
        )
        routed = self._broker.publish(exchange, message)
        seq: Optional[int] = None
        if self._confirm_mode:
            with self._lock:
                seq = next(self._publish_seq)
                confirmed = routed > 0
                if confirmed and faults is not None and faults.nack_confirm():
                    confirmed = False
                self._confirms[seq] = confirmed
        if mandatory and routed == 0:
            raise PublishUnroutable(exchange, routing_key)
        return seq

    def confirmed(self, seq: int) -> bool:
        """Whether publish ``seq`` reached at least one queue.

        Only meaningful in confirm mode; unknown sequence numbers raise.
        """
        with self._lock:
            if seq not in self._confirms:
                raise BrokerError(f"unknown publish sequence {seq}")
            return self._confirms[seq]

    # -- consuming ------------------------------------------------------------

    def basic_consume(
        self,
        queue: str,
        callback: Callable[[Delivery], None],
        prefetch: int = 0,
        auto_ack: bool = False,
        consumer_tag: Optional[str] = None,
    ) -> str:
        """Register a push consumer on ``queue``; returns the consumer tag."""
        self._require_open()
        tag = consumer_tag or f"ctag-{self.connection_id}-{next(self._consumer_tags)}"
        self._broker.get_queue(queue).add_consumer(
            tag, callback, prefetch=prefetch, auto_ack=auto_ack
        )
        with self._lock:
            self._consumer_queues[tag] = queue
        return tag

    def basic_cancel(self, consumer_tag: str) -> None:
        """Deregister a consumer previously created on this channel."""
        self._require_open()
        with self._lock:
            queue_name = self._consumer_queues.pop(consumer_tag, None)
        if queue_name is None:
            raise BrokerError(f"consumer {consumer_tag!r} is not on this channel")
        self._broker.get_queue(queue_name).remove_consumer(consumer_tag)

    def basic_get(self, queue: str, auto_ack: bool = True) -> Optional[Delivery]:
        """Pull a single message from ``queue`` (None when empty)."""
        self._require_open()
        return self._broker.get_queue(queue).get(auto_ack=auto_ack)

    def basic_ack(self, queue: str, delivery_tag: int) -> None:
        """Acknowledge a delivery received from ``queue``."""
        self._require_open()
        self._broker.get_queue(queue).ack(delivery_tag)

    def basic_nack(self, queue: str, delivery_tag: int, requeue: bool = True) -> None:
        """Reject a delivery, optionally requeueing it."""
        self._require_open()
        self._broker.get_queue(queue).nack(delivery_tag, requeue=requeue)
