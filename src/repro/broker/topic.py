"""AMQP topic-pattern matching.

Patterns are dot-separated words where ``*`` matches exactly one word and
``#`` matches zero or more words. Matching is implemented with dynamic
programming over (key word index, pattern word index) — linear-space,
worst-case O(len(key) x len(pattern)) — rather than regex translation, so
pathological patterns cannot blow up.

GoFlow's channel management (paper Figure 3) binds with patterns such as
``FR75013.Feedback.#`` (all feedback at a location) and
``*.Journey.public`` (public journey announcements anywhere).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.broker.errors import BindingError

_STAR = "*"
_HASH = "#"


def validate_pattern(pattern: str) -> None:
    """Reject patterns with empty words (e.g. ``a..b`` or ``.a``)."""
    if not isinstance(pattern, str):
        raise BindingError(f"pattern must be a str, got {type(pattern).__name__}")
    if pattern == "":
        return  # matches only the empty routing key
    if any(word == "" for word in pattern.split(".")):
        raise BindingError(f"malformed topic pattern {pattern!r} (empty word)")


def topic_matches(pattern: str, routing_key: str) -> bool:
    """True when ``routing_key`` matches the AMQP topic ``pattern``."""
    validate_pattern(pattern)
    pattern_words = pattern.split(".") if pattern else []
    key_words = routing_key.split(".") if routing_key else []
    return _match(tuple(pattern_words), tuple(key_words))


def _match(pattern: Tuple[str, ...], key: Tuple[str, ...]) -> bool:
    # match[j] == True means pattern[:i] can match key[:j]
    n = len(key)
    match = [True] + [False] * n
    for word in pattern:
        if word == _HASH:
            # '#' absorbs zero or more words: prefix-or over matches so far.
            running = False
            for j in range(n + 1):
                running = running or match[j]
                match[j] = running
        elif word == _STAR:
            # '*' consumes exactly one word, any value.
            for j in range(n, 0, -1):
                match[j] = match[j - 1]
            match[0] = False
        else:
            for j in range(n, 0, -1):
                match[j] = match[j - 1] and key[j - 1] == word
            match[0] = False
    return match[n]


class TopicMatcher:
    """A set of patterns with memoized per-key matching.

    Topic exchanges hold one matcher; binding churn invalidates the memo.
    """

    def __init__(self) -> None:
        self._patterns: Dict[str, int] = {}
        self._cache: Dict[str, List[str]] = {}

    def add(self, pattern: str) -> None:
        """Register ``pattern`` (reference-counted for duplicate bindings)."""
        validate_pattern(pattern)
        self._patterns[pattern] = self._patterns.get(pattern, 0) + 1
        self._cache.clear()

    def remove(self, pattern: str) -> None:
        """Drop one reference to ``pattern``."""
        count = self._patterns.get(pattern)
        if count is None:
            raise BindingError(f"pattern {pattern!r} is not registered")
        if count == 1:
            del self._patterns[pattern]
        else:
            self._patterns[pattern] = count - 1
        self._cache.clear()

    def matching(self, routing_key: str) -> List[str]:
        """All registered patterns matching ``routing_key``."""
        hit = self._cache.get(routing_key)
        if hit is None:
            hit = [p for p in self._patterns if topic_matches(p, routing_key)]
            self._cache[routing_key] = hit
        return hit

    def __len__(self) -> int:
        return len(self._patterns)
