"""AMQP topic-pattern matching.

Patterns are dot-separated words where ``*`` matches exactly one word and
``#`` matches zero or more words. Matching is implemented with dynamic
programming over (key word index, pattern word index) — linear-space,
worst-case O(len(key) x len(pattern)) — rather than regex translation, so
pathological patterns cannot blow up.

GoFlow's channel management (paper Figure 3) binds with patterns such as
``FR75013.Feedback.#`` (all feedback at a location) and
``*.Journey.public`` (public journey announcements anywhere).

Hot-path discipline: patterns are validated **once** when registered
(:meth:`TopicMatcher.add` or an exchange bind), never per publish. The
per-publish entry points are :func:`topic_matches_raw` (pre-validated
pattern) and :meth:`TopicMatcher.matching`, which memoizes per routing
key behind a bounded LRU so per-user key cardinality cannot grow memory
without limit.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.broker.errors import BindingError

_STAR = "*"
_HASH = "#"

#: Default bound on a matcher's per-routing-key memo.
DEFAULT_CACHE_SIZE = 1024


def validate_pattern(pattern: str) -> None:
    """Reject patterns with empty words (e.g. ``a..b`` or ``.a``)."""
    if not isinstance(pattern, str):
        raise BindingError(f"pattern must be a str, got {type(pattern).__name__}")
    if pattern == "":
        return  # matches only the empty routing key
    if any(word == "" for word in pattern.split(".")):
        raise BindingError(f"malformed topic pattern {pattern!r} (empty word)")


def split_words(text: str) -> Tuple[str, ...]:
    """A pattern or routing key as its tuple of words ('' -> no words)."""
    return tuple(text.split(".")) if text else ()


def topic_matches(pattern: str, routing_key: str) -> bool:
    """True when ``routing_key`` matches the AMQP topic ``pattern``.

    Validates ``pattern`` on every call; hot paths that validated at
    bind time should use :func:`topic_matches_raw` instead.
    """
    validate_pattern(pattern)
    return _match(split_words(pattern), split_words(routing_key))


def topic_matches_raw(pattern: str, routing_key: str) -> bool:
    """Match without re-validating ``pattern`` (validated at bind time)."""
    return _match(split_words(pattern), split_words(routing_key))


def _match(pattern: Tuple[str, ...], key: Tuple[str, ...]) -> bool:
    # match[j] == True means pattern[:i] can match key[:j]
    n = len(key)
    match = [True] + [False] * n
    for word in pattern:
        if word == _HASH:
            # '#' absorbs zero or more words: prefix-or over matches so far.
            running = False
            for j in range(n + 1):
                running = running or match[j]
                match[j] = running
        elif word == _STAR:
            # '*' consumes exactly one word, any value.
            for j in range(n, 0, -1):
                match[j] = match[j - 1]
            match[0] = False
        else:
            for j in range(n, 0, -1):
                match[j] = match[j - 1] and key[j - 1] == word
            match[0] = False
    return match[n]


class TopicMatcher:
    """A set of patterns with bounded, memoized per-key matching.

    Topic exchanges hold one matcher; binding churn invalidates the memo.

    Args:
        cache_size: LRU bound on the per-routing-key memo. Millions of
            distinct per-user keys (``Z*-0.NoiseObservation``) therefore
            cost at most ``cache_size`` cached entries.
        stats: optional sink with ``topic_cache_hits``/``topic_cache_misses``
            counters (the broker passes its :class:`BrokerStats`).
    """

    def __init__(
        self, cache_size: int = DEFAULT_CACHE_SIZE, stats: Optional[Any] = None
    ) -> None:
        if cache_size <= 0:
            raise BindingError(f"cache_size must be positive, got {cache_size}")
        self._patterns: Dict[str, int] = {}
        self._words: Dict[str, Tuple[str, ...]] = {}
        self._cache: "OrderedDict[str, List[str]]" = OrderedDict()
        self._cache_size = cache_size
        self._stats = stats
        self.cache_hits = 0
        self.cache_misses = 0

    def add(self, pattern: str) -> None:
        """Register ``pattern`` (reference-counted for duplicate bindings).

        Validation happens here, once — not per publish.
        """
        validate_pattern(pattern)
        count = self._patterns.get(pattern)
        if count is None:
            self._patterns[pattern] = 1
            self._words[pattern] = split_words(pattern)
        else:
            self._patterns[pattern] = count + 1
        self._cache.clear()

    def remove(self, pattern: str) -> None:
        """Drop one reference to ``pattern``."""
        count = self._patterns.get(pattern)
        if count is None:
            raise BindingError(f"pattern {pattern!r} is not registered")
        if count == 1:
            del self._patterns[pattern]
            del self._words[pattern]
        else:
            self._patterns[pattern] = count - 1
        self._cache.clear()

    def matching(self, routing_key: str) -> List[str]:
        """All registered patterns matching ``routing_key``.

        Callers must treat the returned list as read-only: it is the
        cached object itself, not a copy.
        """
        cache = self._cache
        hit = cache.get(routing_key)
        if hit is not None:
            cache.move_to_end(routing_key)
            self.cache_hits += 1
            if self._stats is not None:
                self._stats.topic_cache_hits += 1
            return hit
        self.cache_misses += 1
        if self._stats is not None:
            self._stats.topic_cache_misses += 1
        key_words = split_words(routing_key)
        hit = [p for p, words in self._words.items() if _match(words, key_words)]
        cache[routing_key] = hit
        if len(cache) > self._cache_size:
            cache.popitem(last=False)
        return hit

    @property
    def cache_len(self) -> int:
        """Entries currently memoized (bounded by ``cache_size``)."""
        return len(self._cache)

    def __len__(self) -> int:
        return len(self._patterns)
