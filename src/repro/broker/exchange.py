"""Exchanges and bindings.

An exchange routes published messages to bound destinations. Destinations
are queues or other exchanges — exchange-to-exchange bindings are how the
paper's Figure 3 topology chains each mobile client's exchange into the
application exchange and the application exchange into the GoFlow
exchange. Routing is cycle-safe: a message traverses any given exchange
at most once per publish.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple, Union

from repro.broker.errors import BindingError, ExchangeError
from repro.broker.message import Message, validate_routing_key
from repro.broker.queue import MessageQueue
from repro.broker.topic import TopicMatcher, topic_matches, validate_pattern


class ExchangeType(enum.Enum):
    """Routing discipline of an exchange."""

    DIRECT = "direct"
    FANOUT = "fanout"
    TOPIC = "topic"


Destination = Union["Exchange", MessageQueue]


@dataclass(frozen=True)
class _BindingKey:
    """Identity of a binding: destination kind+name and the binding key."""

    dest_kind: str
    dest_name: str
    key: str


class Exchange:
    """A named message router.

    Args:
        name: exchange name, unique within the broker.
        type: one of :class:`ExchangeType`.
        durable: cosmetic flag kept for API fidelity (everything is
            in-memory in this reproduction).
    """

    def __init__(self, name: str, type: ExchangeType, durable: bool = True) -> None:
        if not name:
            raise ExchangeError("exchange name must be non-empty")
        if not isinstance(type, ExchangeType):
            raise ExchangeError(f"bad exchange type {type!r}")
        self.name = name
        self.type = type
        self.durable = durable
        self._bindings: Dict[_BindingKey, Destination] = {}
        self._topic = TopicMatcher() if type is ExchangeType.TOPIC else None
        self.published = 0

    # -- binding management -------------------------------------------------

    def bind(self, destination: Destination, key: str = "") -> None:
        """Bind a queue or another exchange with a binding ``key``.

        For ``direct`` exchanges the key must equal the routing key
        exactly; for ``topic`` exchanges it is an AMQP pattern; ``fanout``
        ignores it.
        """
        if self.type is ExchangeType.TOPIC:
            validate_pattern(key)
        binding = self._binding_key(destination, key)
        if binding in self._bindings:
            raise BindingError(
                f"duplicate binding {key!r} from {self.name!r} to {binding.dest_name!r}"
            )
        if isinstance(destination, Exchange) and destination._reaches(self):
            raise BindingError(
                f"binding {self.name!r} -> {destination.name!r} would create a cycle"
            )
        self._bindings[binding] = destination
        if self._topic is not None:
            self._topic.add(key)

    def unbind(self, destination: Destination, key: str = "") -> None:
        """Remove a binding previously created with :meth:`bind`."""
        binding = self._binding_key(destination, key)
        if binding not in self._bindings:
            raise BindingError(
                f"no binding {key!r} from {self.name!r} to {binding.dest_name!r}"
            )
        del self._bindings[binding]
        if self._topic is not None:
            self._topic.remove(key)

    @property
    def binding_count(self) -> int:
        """Number of live bindings out of this exchange."""
        return len(self._bindings)

    def bindings(self) -> List[Tuple[str, str, str]]:
        """List of (destination kind, destination name, key) tuples."""
        return [(b.dest_kind, b.dest_name, b.key) for b in self._bindings]

    # -- routing ----------------------------------------------------------------

    def route(self, message: Message) -> List[MessageQueue]:
        """Resolve the set of queues this publish reaches (no delivery).

        Exchange-to-exchange hops are followed transitively with cycle
        protection. The returned list is deduplicated, in first-reached
        order.
        """
        validate_routing_key(message.routing_key)
        self.published += 1
        queues: List[MessageQueue] = []
        seen_queues: Set[str] = set()
        visited_exchanges: Set[str] = set()
        self._collect(message, queues, seen_queues, visited_exchanges)
        return queues

    def _collect(
        self,
        message: Message,
        queues: List[MessageQueue],
        seen_queues: Set[str],
        visited: Set[str],
    ) -> None:
        if self.name in visited:
            return
        visited.add(self.name)
        for binding, destination in self._bindings.items():
            if not self._key_matches(binding.key, message.routing_key):
                continue
            if isinstance(destination, MessageQueue):
                if destination.name not in seen_queues:
                    seen_queues.add(destination.name)
                    queues.append(destination)
            else:
                destination._collect(message, queues, seen_queues, visited)

    def _key_matches(self, binding_key: str, routing_key: str) -> bool:
        if self.type is ExchangeType.FANOUT:
            return True
        if self.type is ExchangeType.DIRECT:
            return binding_key == routing_key
        return topic_matches(binding_key, routing_key)

    def _reaches(self, other: "Exchange") -> bool:
        """Whether ``other`` is reachable from this exchange via bindings."""
        stack: List[Exchange] = [self]
        seen: Set[str] = set()
        while stack:
            node = stack.pop()
            if node.name == other.name:
                return True
            if node.name in seen:
                continue
            seen.add(node.name)
            for destination in node._bindings.values():
                if isinstance(destination, Exchange):
                    stack.append(destination)
        return False

    @staticmethod
    def _binding_key(destination: Destination, key: str) -> _BindingKey:
        kind = "exchange" if isinstance(destination, Exchange) else "queue"
        return _BindingKey(dest_kind=kind, dest_name=destination.name, key=key)

    def __repr__(self) -> str:
        return f"Exchange({self.name!r}, {self.type.value}, bindings={len(self._bindings)})"
