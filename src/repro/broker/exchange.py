"""Exchanges and bindings.

An exchange routes published messages to bound destinations. Destinations
are queues or other exchanges — exchange-to-exchange bindings are how the
paper's Figure 3 topology chains each mobile client's exchange into the
application exchange and the application exchange into the GoFlow
exchange. Routing is cycle-safe: a message traverses any given exchange
at most once per publish.

Routing is table-driven rather than scan-driven: every bind compiles the
binding into a per-type index (key→destinations hash map for ``direct``,
pattern→destinations map consulted through the memoized
:class:`~repro.broker.topic.TopicMatcher` for ``topic``, a plain
destination list for ``fanout``), so per-publish cost no longer grows
linearly with the number of bindings whose keys don't match.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, Union

from repro import concurrency
from repro.broker.errors import BindingError, ExchangeError
from repro.broker.message import Message, validate_routing_key
from repro.broker.queue import MessageQueue
from repro.broker.topic import TopicMatcher, validate_pattern


class ExchangeType(enum.Enum):
    """Routing discipline of an exchange."""

    DIRECT = "direct"
    FANOUT = "fanout"
    TOPIC = "topic"


Destination = Union["Exchange", MessageQueue]

_EMPTY: Tuple[Destination, ...] = ()


@dataclass(frozen=True)
class _BindingKey:
    """Identity of a binding: destination kind+name and the binding key."""

    dest_kind: str
    dest_name: str
    key: str


class Exchange:
    """A named message router.

    Args:
        name: exchange name, unique within the broker.
        type: one of :class:`ExchangeType`.
        durable: cosmetic flag kept for API fidelity (everything is
            in-memory in this reproduction).
        stats: optional counter sink shared with the owning broker
            (feeds the topic matcher's cache hit/miss counters).
        lock: optional re-entrant lock shared with the owning broker.
            Exchange graphs are routed and rebound as one unit, so every
            exchange of a broker shares the broker's topology lock;
            a standalone exchange gets a private one.
    """

    def __init__(
        self,
        name: str,
        type: ExchangeType,
        durable: bool = True,
        stats: Optional[Any] = None,
        lock: Optional[Any] = None,
    ) -> None:
        if not name:
            raise ExchangeError("exchange name must be non-empty")
        if not isinstance(type, ExchangeType):
            raise ExchangeError(f"bad exchange type {type!r}")
        self.name = name
        self.type = type
        self.durable = durable
        self._bindings: Dict[_BindingKey, Destination] = {}
        self._topic = (
            TopicMatcher(stats=stats) if type is ExchangeType.TOPIC else None
        )
        # compiled routing tables: direct/topic index destinations by
        # binding key (exact key resp. pattern); fanout keeps bind order.
        self._by_key: Dict[str, List[Destination]] = {}
        self._fanout: List[Destination] = []
        # the owning broker hooks this to invalidate its route-plan cache
        # on any topology change.
        self._on_change: Optional[Callable[[], None]] = None
        self._lock = lock if lock is not None else concurrency.make_rlock()
        self.published = 0

    # -- binding management -------------------------------------------------

    def bind(self, destination: Destination, key: str = "") -> None:
        """Bind a queue or another exchange with a binding ``key``.

        For ``direct`` exchanges the key must equal the routing key
        exactly; for ``topic`` exchanges it is an AMQP pattern validated
        here, once — never on the publish path; ``fanout`` ignores it.
        """
        if self.type is ExchangeType.TOPIC:
            validate_pattern(key)
        with self._lock:
            binding = self._binding_key(destination, key)
            if binding in self._bindings:
                raise BindingError(
                    f"duplicate binding {key!r} from {self.name!r} to {binding.dest_name!r}"
                )
            if isinstance(destination, Exchange) and destination._reaches(self):
                raise BindingError(
                    f"binding {self.name!r} -> {destination.name!r} would create a cycle"
                )
            self._bindings[binding] = destination
            if self.type is ExchangeType.FANOUT:
                self._fanout.append(destination)
            else:
                self._by_key.setdefault(key, []).append(destination)
                if self._topic is not None:
                    self._topic.add(key)
            self._notify_change()

    def unbind(self, destination: Destination, key: str = "") -> None:
        """Remove a binding previously created with :meth:`bind`."""
        with self._lock:
            binding = self._binding_key(destination, key)
            if binding not in self._bindings:
                raise BindingError(
                    f"no binding {key!r} from {self.name!r} to {binding.dest_name!r}"
                )
            del self._bindings[binding]
            self._uncompile(binding)
            self._notify_change()

    def _uncompile(self, binding: _BindingKey) -> None:
        """Remove one binding from the compiled routing tables."""
        if self.type is ExchangeType.FANOUT:
            self._remove_destination(self._fanout, binding)
            return
        destinations = self._by_key.get(binding.key)
        if destinations is not None:
            self._remove_destination(destinations, binding)
            if not destinations:
                del self._by_key[binding.key]
        if self._topic is not None:
            self._topic.remove(binding.key)

    @staticmethod
    def _remove_destination(
        destinations: List[Destination], binding: _BindingKey
    ) -> None:
        for i, destination in enumerate(destinations):
            kind = "exchange" if isinstance(destination, Exchange) else "queue"
            if kind == binding.dest_kind and destination.name == binding.dest_name:
                del destinations[i]
                return

    def _drop_destination(self, dest_kind: str, dest_name: str) -> int:
        """Remove every binding to the named destination; returns count.

        The broker calls this when a queue or exchange is deleted so no
        exchange keeps routing into a dead entity (stale-binding sweep).
        """
        with self._lock:
            doomed = [
                b
                for b in self._bindings
                if b.dest_kind == dest_kind and b.dest_name == dest_name
            ]
            for binding in doomed:
                del self._bindings[binding]
                self._uncompile(binding)
            if doomed:
                self._notify_change()
            return len(doomed)

    def _notify_change(self) -> None:
        if self._on_change is not None:
            self._on_change()

    @property
    def binding_count(self) -> int:
        """Number of live bindings out of this exchange."""
        with self._lock:
            return len(self._bindings)

    def bindings(self) -> List[Tuple[str, str, str]]:
        """List of (destination kind, destination name, key) tuples."""
        with self._lock:
            return [(b.dest_kind, b.dest_name, b.key) for b in self._bindings]

    # -- routing ----------------------------------------------------------------

    def route(self, message: Message) -> List[MessageQueue]:
        """Resolve the set of queues this publish reaches (no delivery).

        Exchange-to-exchange hops are followed transitively with cycle
        protection. The returned list is deduplicated, in first-reached
        order.
        """
        validate_routing_key(message.routing_key)
        # one lock acquisition per publish: with a broker-shared lock the
        # whole transitive traversal (and the topic memo it may touch)
        # is consistent against concurrent bind/unbind/delete.
        with self._lock:
            self.published += 1
            queues: List[MessageQueue] = []
            seen_queues: Set[str] = set()
            visited_exchanges: Set[str] = set()
            self._collect(message.routing_key, queues, seen_queues, visited_exchanges)
            return queues

    def _collect(
        self,
        routing_key: str,
        queues: List[MessageQueue],
        seen_queues: Set[str],
        visited: Set[str],
    ) -> None:
        if self.name in visited:
            return
        visited.add(self.name)
        for destination in self._destinations_for(routing_key):
            if isinstance(destination, MessageQueue):
                if destination.name not in seen_queues:
                    seen_queues.add(destination.name)
                    queues.append(destination)
            else:
                destination._collect(routing_key, queues, seen_queues, visited)

    def _destinations_for(self, routing_key: str) -> List[Destination]:
        """Matching destinations straight from the compiled tables."""
        if self.type is ExchangeType.FANOUT:
            return self._fanout
        if self.type is ExchangeType.DIRECT:
            return self._by_key.get(routing_key, _EMPTY)  # type: ignore[return-value]
        assert self._topic is not None
        patterns = self._topic.matching(routing_key)
        if not patterns:
            return _EMPTY  # type: ignore[return-value]
        by_key = self._by_key
        if len(patterns) == 1:
            return by_key[patterns[0]]
        return [d for pattern in patterns for d in by_key[pattern]]

    def _reaches(self, other: "Exchange") -> bool:
        """Whether ``other`` is reachable from this exchange via bindings."""
        stack: List[Exchange] = [self]
        seen: Set[str] = set()
        while stack:
            node = stack.pop()
            if node.name == other.name:
                return True
            if node.name in seen:
                continue
            seen.add(node.name)
            for destination in node._bindings.values():
                if isinstance(destination, Exchange):
                    stack.append(destination)
        return False

    @staticmethod
    def _binding_key(destination: Destination, key: str) -> _BindingKey:
        kind = "exchange" if isinstance(destination, Exchange) else "queue"
        return _BindingKey(dest_kind=kind, dest_name=destination.name, key=key)

    def __repr__(self) -> str:
        return f"Exchange({self.name!r}, {self.type.value}, bindings={len(self._bindings)})"
