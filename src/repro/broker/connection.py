"""Connections: session state for one client of the broker.

Mobile clients connect and disconnect constantly (the paper's Figure 17
shows 35-45 % of measurements arriving hours late because devices are
offline). The broker keeps queues alive across disconnections, so a
reconnecting client drains everything buffered for it — this class models
exactly that session boundary.
"""

from __future__ import annotations

import itertools
from typing import Dict, TYPE_CHECKING

from repro import concurrency
from repro.broker.errors import BrokerError
from repro.broker.channel import Channel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.broker.broker import Broker


class Connection:
    """A client session holding one or more channels."""

    def __init__(self, broker: "Broker", connection_id: str) -> None:
        self._broker = broker
        self.connection_id = connection_id
        self._channels: Dict[int, Channel] = {}
        self._channel_ids = itertools.count(1)
        self._open = True
        self._lock = concurrency.make_rlock()

    @property
    def is_open(self) -> bool:
        """Whether the connection is live."""
        return self._open

    @property
    def channel_count(self) -> int:
        """Number of open channels on this connection."""
        return sum(1 for c in self._channels.values() if c.is_open)

    def channel(self) -> Channel:
        """Open a new channel."""
        with self._lock:
            if not self._open:
                raise BrokerError(f"connection {self.connection_id!r} is closed")
            channel_id = next(self._channel_ids)
            chan = Channel(self._broker, self.connection_id, channel_id)
            self._channels[channel_id] = chan
            return chan

    def close(self) -> None:
        """Close the connection and every channel on it.

        Queues and their buffered messages survive — that is the broker's
        mobile-session buffering guarantee.
        """
        with self._lock:
            if not self._open:
                return
            self._open = False
            channels = list(self._channels.values())
        for chan in channels:
            chan.close()
        self._broker._forget_connection(self.connection_id)
