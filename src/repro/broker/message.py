"""Messages and deliveries.

A :class:`Message` is what publishers hand to an exchange; a
:class:`Delivery` is a message as seen by a queue consumer, carrying the
delivery tag needed for acknowledgement and the redelivery flag.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

_message_ids = itertools.count(1)


@dataclass
class Message:
    """An immutable-by-convention broker message.

    Attributes:
        routing_key: dot-separated words used by direct/topic exchanges.
        body: application payload (any JSON-like structure).
        headers: application metadata (not used for routing).
        timestamp: publisher-side simulated time, if the publisher set it.
        message_id: unique id assigned at construction.
        content_type: payload MIME hint (GoFlow uses ``application/json``).
    """

    routing_key: str
    body: Any
    headers: Dict[str, Any] = field(default_factory=dict)
    timestamp: Optional[float] = None
    message_id: int = field(default_factory=lambda: next(_message_ids))
    content_type: str = "application/json"

    def copy_with(self, **overrides: Any) -> "Message":
        """A shallow copy with selected fields replaced (same message_id)."""
        fields: Dict[str, Any] = {
            "routing_key": self.routing_key,
            "body": self.body,
            "headers": dict(self.headers),
            "timestamp": self.timestamp,
            "message_id": self.message_id,
            "content_type": self.content_type,
        }
        fields.update(overrides)
        return Message(**fields)


@dataclass
class Delivery:
    """A message delivered from a queue to a consumer."""

    message: Message
    delivery_tag: int
    queue_name: str
    redelivered: bool = False
    delivered_at: Optional[float] = None

    @property
    def body(self) -> Any:
        """Shortcut to the message payload."""
        return self.message.body


def validate_routing_key(routing_key: str) -> None:
    """Reject keys that cannot participate in topic routing.

    AMQP routing keys are sequences of words separated by dots. Empty
    words (leading/trailing/double dots) are rejected because their
    matching semantics are ambiguous across broker implementations.
    """
    from repro.broker.errors import BrokerError

    if not isinstance(routing_key, str):
        raise BrokerError(f"routing key must be a str, got {type(routing_key).__name__}")
    if routing_key == "":
        return  # the empty key is legal (fanout publishes often use it)
    if any(word == "" for word in routing_key.split(".")):
        raise BrokerError(f"malformed routing key {routing_key!r} (empty word)")
