"""The Figure 16 battery-depletion protocol.

"For all the experiments, the phones were all initially charged at 80 %
... and ran the application over the day from 10AM to 5PM ... They were
only running SoundCity ... measurements were taken every minute and
thus sent every 1 min or 5 min, depending on the version."

One :class:`EnergyRun` simulates a single phone through the protocol
with a fixed transport and client configuration and reports the battery
depletion (percentage points of charge consumed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.client.client import GoFlowClient
from repro.client.uplink import BrokerUplink
from repro.client.versions import AppVersion
from repro.core.server import GoFlowServer
from repro.devices.battery import Battery, NetworkKind
from repro.devices.models import PhoneModel
from repro.devices.registry import DeviceRegistry
from repro.errors import ConfigurationError
from repro.sensing.scheduler import PhoneContext, SensingScheduler
from repro.simulation.engine import Simulator

_TEN_AM_S = 10 * 3600.0
_FIVE_PM_S = 17 * 3600.0


@dataclass
class EnergyRun:
    """One protocol run's outcome."""

    label: str
    version: Optional[AppVersion]
    network: NetworkKind
    start_level: float
    end_level: float
    ledger: Dict[str, float]

    @property
    def depletion(self) -> float:
        """Charge consumed, as a fraction of capacity (e.g. 0.11 = 11 pts)."""
        return self.start_level - self.end_level


class EnergyExperiment:
    """Runs the Figure 16 configurations on one phone model."""

    def __init__(
        self,
        model_name: str = "A0001",
        sensing_period_s: float = 60.0,
        seed: int = 0,
    ) -> None:
        if sensing_period_s <= 0:
            raise ConfigurationError("sensing period must be > 0")
        self.registry = DeviceRegistry()
        self.model: PhoneModel = self.registry.get(model_name)
        self.sensing_period_s = sensing_period_s
        self.seed = seed

    def run_configuration(
        self,
        version: Optional[AppVersion],
        network: NetworkKind,
        label: Optional[str] = None,
    ) -> EnergyRun:
        """Run one (version, network) cell; ``version=None`` = no app."""
        simulator = Simulator(seed=self.seed, origin=_TEN_AM_S)
        battery = Battery(self.model.battery_capacity_j, level=0.8)
        start_level = battery.level
        if version is None:
            simulator.at(_FIVE_PM_S, lambda: None, label="end")
            simulator.run_until(_FIVE_PM_S)
            battery.idle(_FIVE_PM_S - _TEN_AM_S)
            return EnergyRun(
                label=label or "no-app",
                version=None,
                network=network,
                start_level=start_level,
                end_level=battery.level,
                ledger=battery.ledger(),
            )

        server = GoFlowServer(clock=lambda: simulator.now)
        server.register_app("SC")
        credentials = server.enroll_user("SC", "bench-phone", "pw")
        uplink = BrokerUplink(server.broker, credentials["exchange"], app_id="SC")
        client = GoFlowClient(
            "bench-phone",
            version,
            uplink,
            clock=lambda: simulator.now,
            connectivity=None,  # the protocol keeps the phone by a window
            battery=battery,
        )
        # force the requested transport: the protocol compares WiFi vs 3G
        client._online_transport = lambda: network  # type: ignore[method-assign]

        rng = simulator.rngs.stream("energy-phone")
        context = PhoneContext(5000.0, 5000.0)

        def charged_emit(observation):
            battery.mic_sample()
            battery.activity_sample()
            if observation.location is not None:
                battery.location_fix(observation.location.provider)
            else:
                battery.location_fix("network")  # the fix attempt still costs
            client.on_observation(observation)

        scheduler = SensingScheduler(
            simulator,
            "bench-phone",
            self.model,
            context,
            charged_emit,
            rng,
            opportunistic_period_s=self.sensing_period_s,
        )
        scheduler.start_opportunistic(until=_FIVE_PM_S)
        simulator.run_until(_FIVE_PM_S)
        client.flush()
        battery.idle(_FIVE_PM_S - _TEN_AM_S)
        return EnergyRun(
            label=label or f"{version.value}/{network.value}",
            version=version,
            network=network,
            start_level=start_level,
            end_level=battery.level,
            ledger=battery.ledger(),
        )

    def run_all(self) -> List[EnergyRun]:
        """The full Figure 16 matrix."""
        runs = [self.run_configuration(None, NetworkKind.WIFI, label="no-app")]
        for version in (AppVersion.V1_2_9, AppVersion.V1_3):
            for network in (NetworkKind.WIFI, NetworkKind.CELL_3G):
                kind = "buffered" if version.buffers else "unbuffered"
                runs.append(
                    self.run_configuration(
                        version, network, label=f"{kind}/{network.value}"
                    )
                )
        return runs
