"""The fleet campaign: a scaled SoundCity deployment, end to end.

Everything the analysis benches consume flows through the real stack:
each user's scheduler produces observations, the GoFlow client buffers
and uplinks them per its version's policy over the user's connectivity,
the broker routes them through the Figure 3 topology, the GoFlow server
ingests them through the privacy policy into the document store, and
the analytics engine queries the store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.client.client import GoFlowClient
from repro.client.uplink import BrokerUplink
from repro.client.versions import AppVersion
from repro.core.server import GoFlowServer
from repro.crowd.connectivity import ConnectivityParams
from repro.crowd.population import Population, User
from repro.devices.registry import DeviceRegistry
from repro.errors import ConfigurationError
from repro.sensing.scheduler import SensingScheduler
from repro.simulation.engine import Simulator

APP_ID = "SC"
SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters of one campaign run.

    The defaults give a quick (~seconds) run; benches scale up as
    needed. ``scale`` is relative to the paper's 2,091-device fleet.
    """

    seed: int = 0
    scale: float = 0.02
    days: float = 2.0
    app_version: AppVersion = AppVersion.V1_2_9
    opportunistic_period_s: float = 300.0
    manual_per_user_day: float = 0.6
    journeys_per_user_day: float = 0.05
    journey_duration_s: float = 900.0
    journey_frequency_s: float = 60.0
    city_extent_m: float = 10_000.0
    share_rate: float = 1.0
    connectivity: Optional[ConnectivityParams] = None
    #: optional city noise model; when set, phones sense the city field
    #: (via CitySoundscape) instead of the homogeneous mixture, making
    #: the campaign's observations assimilable
    city_model: Optional[object] = None
    #: optional release timeline: ((release_day, version), ...) sorted by
    #: day. A user installs the version current at their install date
    #: (the paper shipped v1.1 in July, v1.2.9 in November, v1.3 in
    #: April). When set, ``app_version`` is ignored.
    version_timeline: Optional[Tuple[Tuple[float, AppVersion], ...]] = None
    #: when True (and a timeline is set), existing installs upgrade to
    #: each new release on its day, like Play-store auto-updates; when
    #: False a user keeps their install-time version forever.
    upgrade_in_place: bool = False

    def __post_init__(self) -> None:
        if self.scale <= 0 or self.days <= 0:
            raise ConfigurationError("scale and days must be > 0")
        if self.version_timeline is not None:
            if not self.version_timeline:
                raise ConfigurationError("version timeline must be non-empty")
            days = [day for day, _ in self.version_timeline]
            if days != sorted(days):
                raise ConfigurationError("version timeline must be sorted by day")
            if days[0] > 0.0:
                raise ConfigurationError(
                    "version timeline must cover day 0 (the launch release)"
                )

    def version_at(self, install_time_s: float) -> AppVersion:
        """The release a user installing at ``install_time_s`` gets."""
        if self.version_timeline is None:
            return self.app_version
        current = self.version_timeline[0][1]
        for release_day, version in self.version_timeline:
            if install_time_s >= release_day * SECONDS_PER_DAY:
                current = version
            else:
                break
        return current


@dataclass
class CampaignResult:
    """Everything a bench needs after a run."""

    config: CampaignConfig
    server: GoFlowServer
    population: Population
    produced: int
    ingested: int
    pending_on_devices: int

    @property
    def analytics(self):
        """The server's analytics engine."""
        return self.server.analytics

    def scale_factor(self) -> float:
        """Multiplier from this run's fleet to the paper's fleet."""
        return 1.0 / self.config.scale


class FleetCampaign:
    """Builds and runs one campaign."""

    def __init__(self, config: Optional[CampaignConfig] = None) -> None:
        self.config = config or CampaignConfig()

    def run(self) -> CampaignResult:
        """Execute the campaign and return the populated stack."""
        config = self.config
        simulator = Simulator(seed=config.seed)
        server = GoFlowServer(clock=lambda: simulator.now)
        server.register_app(APP_ID)
        population = Population(
            simulator.rngs,
            registry=DeviceRegistry(),
            scale=config.scale,
            campaign_days=config.days,
            city_extent_m=config.city_extent_m,
            share_rate=config.share_rate,
            connectivity_params=config.connectivity,
        )
        horizon = config.days * SECONDS_PER_DAY
        soundscape = None
        if config.city_model is not None:
            from repro.noise.cityscape import CitySoundscape

            soundscape = CitySoundscape(config.city_model)
        schedulers: List[SensingScheduler] = []
        clients: List[GoFlowClient] = []
        for user in population.sharing_users():
            scheduler, client = self._install_user(
                simulator, server, user, horizon, soundscape
            )
            schedulers.append(scheduler)
            clients.append(client)
        if config.upgrade_in_place and config.version_timeline is not None:
            for release_day, version in config.version_timeline:
                release_time = release_day * SECONDS_PER_DAY
                if 0.0 < release_time < horizon:
                    simulator.at(
                        release_time,
                        lambda v=version: self._upgrade_fleet(clients, v),
                        label=f"release:{version.value}",
                    )
        simulator.run_until(horizon)
        produced = sum(s.produced for s in schedulers)
        pending = sum(c.pending for c in clients)
        return CampaignResult(
            config=config,
            server=server,
            population=population,
            produced=produced,
            ingested=server.ingested,
            pending_on_devices=pending,
        )

    @staticmethod
    def _upgrade_fleet(clients: List[GoFlowClient], version: AppVersion) -> None:
        """Push a release to every installed client (store auto-update)."""
        for client in clients:
            client.version = version

    # -- per-user wiring --------------------------------------------------------

    def _install_user(
        self,
        simulator: Simulator,
        server: GoFlowServer,
        user: User,
        horizon: float,
        soundscape=None,
    ):
        config = self.config
        credentials = server.enroll_user(APP_ID, user.user_id, "pw-" + user.user_id)
        uplink = BrokerUplink(
            server.broker, credentials["exchange"], app_id=APP_ID
        )
        client = GoFlowClient(
            user.user_id,
            config.version_at(user.installed_at_s),
            uplink,
            clock=lambda: simulator.now,
            connectivity=user.connectivity,
        )
        context = user.context().bind_clock(lambda: simulator.now)
        microphone = None
        if soundscape is not None:
            from repro.sensing.microphone import Microphone

            microphone = Microphone(user.model, soundscape=soundscape)
        scheduler = SensingScheduler(
            simulator,
            user.user_id,
            user.model,
            context,
            client.on_observation,
            simulator.rngs.stream(f"sensing.{user.user_id}"),
            microphone=microphone,
            opportunistic_period_s=config.opportunistic_period_s,
        )
        start = max(user.installed_at_s, 0.0)
        if start < horizon:
            simulator.at(
                start,
                lambda s=scheduler, h=horizon: s.start_opportunistic(until=h),
                label=f"install:{user.user_id}",
            )
            self._schedule_participatory(simulator, scheduler, user, start, horizon)
        return scheduler, client

    def _schedule_participatory(
        self,
        simulator: Simulator,
        scheduler: SensingScheduler,
        user: User,
        start: float,
        horizon: float,
    ) -> None:
        """Draw manual senses and journeys over the user's active days."""
        config = self.config
        rng = simulator.rngs.stream(f"participatory.{user.user_id}")
        active_days = max(0.0, (horizon - start) / SECONDS_PER_DAY)
        # engaged users sense more in *every* mode: scale participatory
        # rates by the user's availability so the opportunistic /
        # participatory mix stays constant across engagement levels
        engagement = min(1.5, user.profile.expected_daily_share / 0.25)
        manual_count = int(
            rng.poisson(config.manual_per_user_day * active_days * engagement)
        )
        hours = user.profile.normalized()
        for _ in range(manual_count):
            when = self._draw_active_time(rng, hours, start, horizon)
            if when is not None:
                simulator.at(
                    when,
                    lambda s=scheduler: s.sense_now(),
                    label=f"manual:{user.user_id}",
                )
        journey_count = int(
            rng.poisson(config.journeys_per_user_day * active_days * engagement)
        )
        for _ in range(journey_count):
            when = self._draw_active_time(rng, hours, start, horizon)
            if when is None:
                continue
            duration = min(config.journey_duration_s, horizon - when)
            if duration <= config.journey_frequency_s:
                continue
            simulator.at(
                when,
                lambda s=scheduler, d=duration: self._safe_start_journey(s, d),
                label=f"journey:{user.user_id}",
            )

    def _safe_start_journey(self, scheduler: SensingScheduler, duration: float) -> None:
        config = self.config
        try:
            scheduler.start_journey(config.journey_frequency_s, duration)
        except ConfigurationError:
            pass  # a previous journey still running; skip this one

    @staticmethod
    def _draw_active_time(
        rng: np.random.Generator,
        hourly_distribution: np.ndarray,
        start: float,
        horizon: float,
    ) -> Optional[float]:
        """A time in [start, horizon) at an hour the user is active."""
        if horizon <= start:
            return None
        for _ in range(20):
            day = int(rng.integers(0, max(1, int(np.ceil((horizon - start) / SECONDS_PER_DAY)))))
            hour = int(rng.choice(24, p=hourly_distribution))
            when = (
                (start // SECONDS_PER_DAY + day) * SECONDS_PER_DAY
                + hour * 3600.0
                + float(rng.uniform(0, 3600.0))
            )
            if start <= when < horizon:
                return when
        return None
