"""Campaign orchestration: the end-to-end experiments.

- :class:`FleetCampaign` — runs a scaled SoundCity deployment end to
  end: population -> sensing schedulers -> GoFlow clients -> broker ->
  GoFlow server -> document store. Every figure bench that analyzes
  "the dataset" analyzes the store this campaign populates.
- :class:`EnergyExperiment` — the §5.3 battery-depletion protocol
  (Figure 16): one device, 10 AM-5 PM, 1-minute sensing, configurations
  {no app, unbuffered, buffered} x {WiFi, 3G}.
- :class:`AssimilationExperiment` — crowd observations correcting a
  perturbed city noise map with BLUE (the §4.2 engine end to end).
"""

from repro.campaign.fleet import CampaignConfig, CampaignResult, FleetCampaign
from repro.campaign.energy import EnergyExperiment, EnergyRun
from repro.campaign.assimilate import AssimilationExperiment, AssimilationResult

__all__ = [
    "AssimilationExperiment",
    "AssimilationResult",
    "CampaignConfig",
    "CampaignResult",
    "EnergyExperiment",
    "EnergyRun",
    "FleetCampaign",
]
