"""The assimilation experiment: crowd observations correcting a map.

Ties §4.2's engine end to end:

1. a **true city** produces the ground-truth noise map;
2. a **perturbed twin** (biased traffic, missing POIs, correlated
   formulation error) plays the numerical model whose map needs
   correcting;
3. crowd observations are drawn at user positions: true level at the
   reported (error-displaced) location, passed through the device's
   microphone response, then corrected by the calibration database;
4. BLUE analyses the background against the observation batch;
5. the result is scored by map RMSE against the truth.

This is the harness behind the assimilation-quality bench and the
calibration/sensing-mode ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.assimilation.blue import BlueAnalysis
from repro.assimilation.citymodel import CityNoiseModel
from repro.assimilation.covariance import sample_correlated_field
from repro.assimilation.grid import CityGrid
from repro.assimilation.observation import ObservationOperator, PointObservation
from repro.calibration.database import CalibrationDatabase
from repro.devices.models import PhoneModel
from repro.devices.registry import DeviceRegistry
from repro.errors import ConfigurationError


@dataclass
class AssimilationResult:
    """Scores of one assimilation run."""

    background_rmse: float
    analysis_rmse: float
    observation_count: int

    @property
    def improvement(self) -> float:
        """Relative RMSE reduction achieved by assimilating the crowd."""
        if self.background_rmse == 0:
            return 0.0
        return 1.0 - self.analysis_rmse / self.background_rmse


class AssimilationExperiment:
    """A configured truth/background pair ready to assimilate batches."""

    def __init__(
        self,
        seed: int = 0,
        grid_nx: int = 12,
        grid_ny: int = 12,
        extent_m: float = 4000.0,
        background_sigma_db: float = 4.0,
        length_m: float = 800.0,
    ) -> None:
        self.rng = np.random.Generator(np.random.PCG64(seed))
        self.grid = CityGrid(grid_nx, grid_ny, (extent_m, extent_m))
        self.truth_model = CityNoiseModel.random_city(self.grid, self.rng)
        self.truth_map = self.truth_model.simulate()
        background_model = self.truth_model.perturbed(self.rng)
        formulation_error = sample_correlated_field(
            self.rng, self.grid.centers(), sigma=2.5, length_m=length_m
        )
        self.background_map = background_model.simulate() + formulation_error
        self.blue = BlueAnalysis(
            self.grid,
            background_sigma_db=background_sigma_db,
            length_m=length_m,
        )
        self.operator = ObservationOperator(self.grid)
        self.registry = DeviceRegistry()

    # -- observation generation -----------------------------------------------

    def draw_observations(
        self,
        count: int,
        accuracy_m: float = 30.0,
        model_name: Optional[str] = None,
        calibration: Optional[CalibrationDatabase] = None,
    ) -> List[PointObservation]:
        """Crowd observations of the *true* field.

        Each observation: a true position, a reported position displaced
        per ``accuracy_m``, the true level *at the true position* passed
        through the device response, then calibration correction (when a
        database is given). The residual sensor error after calibration
        feeds the observation-error variance.
        """
        if count <= 0:
            raise ConfigurationError("count must be > 0")
        model: PhoneModel = self.registry.get(
            model_name or self.registry.names()[0]
        )
        observations: List[PointObservation] = []
        margin = 1.0
        for _ in range(count):
            true_x = float(self.rng.uniform(margin, self.grid.width_m - margin))
            true_y = float(self.rng.uniform(margin, self.grid.height_m - margin))
            true_level = self.truth_model.level_at(
                true_x, true_y, field=self.truth_map
            )
            measured = model.mic.apply(
                true_level, noise=float(self.rng.standard_normal())
            )
            if calibration is not None:
                value = calibration.correct(model.name, measured)
                sensor_sigma = calibration.sensor_sigma_db(model.name)
            else:
                value = measured
                # uncalibrated: the systematic model offset is unknown
                sensor_sigma = 6.0
            sigma_pos = accuracy_m / 1.515
            reported_x = float(
                np.clip(
                    true_x + self.rng.normal(0, sigma_pos),
                    margin,
                    self.grid.width_m - margin,
                )
            )
            reported_y = float(
                np.clip(
                    true_y + self.rng.normal(0, sigma_pos),
                    margin,
                    self.grid.height_m - margin,
                )
            )
            observations.append(
                PointObservation(
                    x_m=reported_x,
                    y_m=reported_y,
                    value_db=float(value),
                    accuracy_m=accuracy_m,
                    sensor_sigma_db=sensor_sigma,
                )
            )
        return observations

    def calibration_from_party(self, model_name: str) -> CalibrationDatabase:
        """A database holding a reference-party fit for ``model_name``."""
        model = self.registry.get(model_name)
        # the reference sweep stays inside the linear regime of every
        # model (above noise floors, below clipping)
        reference = np.linspace(50.0, 80.0, 24)
        measured = np.array(
            [
                model.mic.apply(level, noise=float(self.rng.standard_normal()))
                for level in reference
            ]
        )
        database = CalibrationDatabase()
        database.record_party(model_name, reference, measured)
        return database

    # -- assimilation ------------------------------------------------------------

    def assimilate(
        self,
        observations: Sequence[PointObservation],
        screen_k: Optional[float] = None,
    ) -> AssimilationResult:
        """Run BLUE and score background vs analysis against the truth.

        ``screen_k`` enables innovation-based quality control before the
        analysis (reject observations more than k expected standard
        deviations from the background).
        """
        batch = self.operator.build(observations)
        if screen_k is not None:
            batch = self.blue.screen(self.background_map, batch, k=screen_k)
        result = self.blue.analyse(self.background_map, batch)
        return AssimilationResult(
            background_rmse=self.blue.rmse(self.background_map, self.truth_map),
            analysis_rmse=self.blue.rmse(result.analysis, self.truth_map),
            observation_count=batch.count,
        )
