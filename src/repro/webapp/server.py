"""The SoundCity application server's REST surface.

Composes the GoFlow core with the application services (exposure,
journeys, feedback) and mounts their routes on the same router — the
deployment of Figure 1, where the Web application server sits beside
the crowd-sensing server and both are reached over REST.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.accounts import Role
from repro.core.api import Request, Response
from repro.core.errors import ValidationError
from repro.core.server import GoFlowServer
from repro.webapp.exposure import ExposureService
from repro.webapp.feedback import FeedbackService, PromptPolicy
from repro.webapp.journeys import JourneyService, Visibility


class SoundCityApp:
    """The user-facing application server on top of one GoFlow instance."""

    def __init__(
        self,
        server: GoFlowServer,
        app_id: str = "SC",
        prompt_policy: Optional[PromptPolicy] = None,
    ) -> None:
        self.server = server
        self.app_id = app_id
        self.exposure = ExposureService(server.store, server.privacy)
        self.journeys = JourneyService(
            server.store, server.privacy, broker=server.broker, app_id=app_id
        )
        self.feedback = FeedbackService(
            server.store,
            server.privacy,
            broker=server.broker,
            policy=prompt_policy,
            app_id=app_id,
        )
        self._register_routes()

    # -- REST surface ---------------------------------------------------------

    def _register_routes(self) -> None:
        api = self.server.api
        api.route("GET", "/me/exposure/daily/{day}", self._r_daily, Role.CONTRIBUTOR)
        api.route(
            "GET", "/me/exposure/monthly/{month}", self._r_monthly, Role.CONTRIBUTOR
        )
        api.route(
            "GET", "/me/exposure/hourly/{day}", self._r_hourly, Role.CONTRIBUTOR
        )
        api.route("POST", "/journeys", self._r_create_journey, Role.CONTRIBUTOR)
        api.route("GET", "/journeys", self._r_my_journeys, Role.CONTRIBUTOR)
        api.route("GET", "/journeys/public", self._r_public_journeys, Role.CONTRIBUTOR)
        api.route(
            "GET", "/journeys/{journey_id}/summary", self._r_journey_summary,
            Role.CONTRIBUTOR,
        )
        api.route(
            "POST", "/journeys/{journey_id}/share", self._r_share_journey,
            Role.CONTRIBUTOR,
        )
        api.route("POST", "/feedback", self._r_submit_feedback, Role.CONTRIBUTOR)
        api.route("GET", "/me/sensitivity", self._r_sensitivity, Role.CONTRIBUTOR)
        api.route("GET", "/map/live", self._r_live_map, Role.CONTRIBUTOR)

    def handle(self, request: Request) -> Response:
        """Entry point (shares the GoFlow router)."""
        return self.server.handle(request)

    # -- handlers ------------------------------------------------------------------

    @staticmethod
    def _summary_body(summary) -> Dict[str, Any]:
        return {
            "period": summary.period,
            "measurements": summary.measurement_count,
            "leq_dba": summary.leq_dba,
            "min_dba": summary.min_dba,
            "max_dba": summary.max_dba,
            "band": summary.band,
            "advice": summary.advice,
        }

    def _r_daily(self, request: Request, path, principal) -> Any:
        return self._summary_body(
            self.exposure.daily(principal.user_id, int(path["day"]))
        )

    def _r_monthly(self, request: Request, path, principal) -> Any:
        return self._summary_body(
            self.exposure.monthly(principal.user_id, int(path["month"]))
        )

    def _r_hourly(self, request: Request, path, principal) -> Any:
        profile = self.exposure.hourly_profile(principal.user_id, int(path["day"]))
        return {str(hour): level for hour, level in sorted(profile.items())}

    def _r_create_journey(self, request: Request, path, principal) -> Any:
        body = request.body or {}
        for required in ("title", "started_at", "ended_at"):
            if required not in body:
                raise ValidationError(f"missing field {required!r}")
        journey = self.journeys.create(
            principal.user_id,
            body["title"],
            float(body["started_at"]),
            float(body["ended_at"]),
            home_zone=body.get("home_zone", "Z0-0"),
        )
        return {"journey_id": journey.journey_id}

    def _r_my_journeys(self, request: Request, path, principal) -> Any:
        journeys = self.journeys.for_user(principal.user_id)
        for journey in journeys:
            journey.pop("_id", None)
            journey.pop("owner", None)
        return journeys

    def _r_public_journeys(self, request: Request, path, principal) -> Any:
        journeys = self.journeys.public(zone=request.params.get("zone"))
        for journey in journeys:
            journey.pop("_id", None)
            journey.pop("owner", None)
        return journeys

    def _r_journey_summary(self, request: Request, path, principal) -> Any:
        return self.journeys.summary(int(path["journey_id"]))

    def _r_share_journey(self, request: Request, path, principal) -> Any:
        body = request.body or {}
        visibility = Visibility(body.get("visibility", "public"))
        self.journeys.share(principal.user_id, int(path["journey_id"]), visibility)
        return {"visibility": visibility.value}

    def _r_submit_feedback(self, request: Request, path, principal) -> Any:
        body = request.body or {}
        if "rating" not in body:
            raise ValidationError("missing rating")
        feedback_id = self.feedback.submit(
            principal.user_id,
            int(body["rating"]),
            text=body.get("text", ""),
            zone=body.get("zone", "NOLOC"),
            taken_at=float(body.get("taken_at", 0.0)),
            noise_dba=body.get("noise_dba"),
        )
        return {"feedback_id": feedback_id}

    def _r_sensitivity(self, request: Request, path, principal) -> Any:
        return self.feedback.sensitivity_profile(principal.user_id)

    def _r_live_map(self, request: Request, path, principal) -> Any:
        """The push-maintained noise map: tile aggregates folded at
        ingest, so serving the map never rescans the store. Scoped to
        this application's tile engine — co-hosted apps' observations
        never surface here."""
        region = request.params.get("region")
        tiles = self.server.streaming.tiles_snapshot(
            region=region, app_id=self.app_id
        )
        return {"cell_m": self.server.streaming.cell_m, "tiles": tiles}
