"""Quantified self: personal noise-exposure statistics.

SoundCity "shows the individual's daily and monthly exposure to noise in
relation with its impact on health" (§4.2, Figure 6). Exposure over a
period is the energy mean (Leq) of the user's measurements; health
guidance follows the WHO community-noise guidance bands the paper cites
([44] WHO 1999).

Retrieval honours the privacy design: the store only holds pseudonyms,
so the service re-derives the caller's pseudonym from their
authenticated user id — "specific contributions may be retrieved
provided the user's credentials".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.datamgmt import OBSERVATIONS
from repro.core.errors import NotFoundError
from repro.core.privacy import PrivacyPolicy
from repro.docstore.store import DocumentStore
from repro.noise.spl import leq

SECONDS_PER_DAY = 86400.0

#: WHO community-noise guidance bands: (upper bound dB(A), label, advice).
WHO_BANDS: List[Tuple[float, str, str]] = [
    (55.0, "acceptable", "below WHO daytime community guidance"),
    (
        65.0,
        "annoyance",
        "serious annoyance range; may interfere with concentration",
    ),
    (
        75.0,
        "health risk",
        "sustained exposure can disturb sleep and raise cardiovascular risk",
    ),
    (
        float("inf"),
        "harmful",
        "hearing-damage range for sustained exposure; limit time here",
    ),
]


def who_band(level_dba: float) -> Tuple[str, str]:
    """(label, advice) of the WHO band containing ``level_dba``."""
    for upper, label, advice in WHO_BANDS:
        if level_dba < upper:
            return (label, advice)
    raise AssertionError("unreachable: last band is unbounded")


@dataclass(frozen=True)
class ExposureSummary:
    """Exposure of one user over one period."""

    user_id: str
    period: str  # e.g. 'day 3' or 'month 0'
    measurement_count: int
    leq_dba: float
    min_dba: float
    max_dba: float
    band: str
    advice: str


class ExposureService:
    """Computes personal exposure summaries from the observation store."""

    def __init__(self, store: DocumentStore, privacy: PrivacyPolicy) -> None:
        self._observations = store.collection(OBSERVATIONS)
        self._privacy = privacy

    def _levels_between(
        self, user_id: str, since: float, until: float
    ) -> List[float]:
        pseudonym = self._privacy.pseudonym(user_id)
        rows = self._observations.aggregate(
            [
                {
                    "$match": {
                        "contributor": pseudonym,
                        "taken_at": {"$gte": since, "$lt": until},
                    }
                },
                {"$project": {"_id": 0, "dba": "$noise_dba"}},
            ]
        )
        return [row["dba"] for row in rows if row["dba"] is not None]

    def _summarize(
        self, user_id: str, period: str, levels: List[float]
    ) -> ExposureSummary:
        if not levels:
            raise NotFoundError(
                f"no measurements for {user_id!r} in {period}"
            )
        exposure = leq(levels)
        band, advice = who_band(exposure)
        return ExposureSummary(
            user_id=user_id,
            period=period,
            measurement_count=len(levels),
            leq_dba=round(exposure, 2),
            min_dba=round(min(levels), 2),
            max_dba=round(max(levels), 2),
            band=band,
            advice=advice,
        )

    # -- public API -----------------------------------------------------------

    def daily(self, user_id: str, day: int) -> ExposureSummary:
        """Exposure summary for simulated day ``day`` (0-based)."""
        since = day * SECONDS_PER_DAY
        levels = self._levels_between(user_id, since, since + SECONDS_PER_DAY)
        return self._summarize(user_id, f"day {day}", levels)

    def monthly(self, user_id: str, month: int) -> ExposureSummary:
        """Exposure summary for simulated 30-day month ``month``."""
        since = month * 30 * SECONDS_PER_DAY
        until = since + 30 * SECONDS_PER_DAY
        levels = self._levels_between(user_id, since, until)
        return self._summarize(user_id, f"month {month}", levels)

    def daily_series(self, user_id: str, days: int) -> List[Optional[ExposureSummary]]:
        """Summaries for days 0..days-1 (None where no data)."""
        series: List[Optional[ExposureSummary]] = []
        for day in range(days):
            try:
                series.append(self.daily(user_id, day))
            except NotFoundError:
                series.append(None)
        return series

    def hourly_profile(self, user_id: str, day: int) -> Dict[int, float]:
        """Hour -> Leq for one day (the Figure 6 'Statistics' screen)."""
        since = day * SECONDS_PER_DAY
        pseudonym = self._privacy.pseudonym(user_id)
        rows = self._observations.aggregate(
            [
                {
                    "$match": {
                        "contributor": pseudonym,
                        "taken_at": {"$gte": since, "$lt": since + SECONDS_PER_DAY},
                    }
                },
                {
                    "$addFields": {
                        "hour": {
                            "$floor": {
                                "$divide": [{"$mod": ["$taken_at", 86400]}, 3600]
                            }
                        }
                    }
                },
                {"$group": {"_id": "$hour", "levels": {"$push": "$noise_dba"}}},
            ]
        )
        return {
            int(row["_id"]): round(leq(row["levels"]), 2)
            for row in rows
            if row["levels"]
        }
