"""Qualitative feedback: submissions and measurement-triggered prompts.

§8 (future work): "It can be challenging to engage the users to the
point where they would willingly provide qualitative feedback ... The
feedback mechanism should be easily accessible and yet not invasive.
Also, it might be beneficial to trigger it at some proper times, to be
determined by the available quantitative information. In the case of
SoundCity, user feedback at locations where the noise is accurately
measured would be helpful to build an individual profile of sensitivity
to noise."

The :class:`PromptPolicy` encodes exactly that sentence: prompt when a
measurement is (a) loud, (b) accurately localized, and (c) the user has
not been bothered recently (non-invasiveness budget). Responses are
stored and aggregated into the per-user noise-sensitivity profile the
paper envisions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.broker.broker import Broker
from repro.broker.message import Message
from repro.core.channels import ChannelManager
from repro.core.errors import NotFoundError, ValidationError
from repro.core.privacy import PrivacyPolicy
from repro.docstore.store import DocumentStore


@dataclass(frozen=True)
class PromptPolicy:
    """When to ask the user how the noise feels.

    Attributes:
        min_noise_dba: only prompt about notable noise.
        max_accuracy_m: only prompt where the measurement is localized
            well enough to be attributable to a place.
        min_gap_s: non-invasiveness budget between prompts per user.
    """

    min_noise_dba: float = 65.0
    max_accuracy_m: float = 50.0
    min_gap_s: float = 4 * 3600.0

    def __post_init__(self) -> None:
        if self.max_accuracy_m <= 0 or self.min_gap_s < 0:
            raise ValidationError("invalid prompt policy parameters")


class FeedbackService:
    """Prompt decisions, submissions, and sensitivity profiles."""

    def __init__(
        self,
        store: DocumentStore,
        privacy: PrivacyPolicy,
        broker: Optional[Broker] = None,
        policy: Optional[PromptPolicy] = None,
        app_id: str = "SC",
    ) -> None:
        self._feedback = store.collection("feedback")
        self._feedback.create_index("contributor", kind="hash", exist_ok=True)
        self._privacy = privacy
        self._broker = broker
        self._app_id = app_id
        self.policy = policy or PromptPolicy()
        self._last_prompt: Dict[str, float] = {}
        self._ids = itertools.count(1)
        self.prompts_issued = 0
        self.prompts_suppressed = 0

    # -- prompting ------------------------------------------------------------

    def should_prompt(self, user_id: str, observation: Dict[str, Any]) -> bool:
        """Apply the §8 triggering policy to one stored observation."""
        noise = observation.get("noise_dba")
        location = observation.get("location")
        taken_at = observation.get("taken_at", 0.0)
        if noise is None or noise < self.policy.min_noise_dba:
            return False
        if location is None or location.get("accuracy_m", 1e9) > self.policy.max_accuracy_m:
            return False
        last = self._last_prompt.get(user_id)
        if last is not None and taken_at - last < self.policy.min_gap_s:
            self.prompts_suppressed += 1
            return False
        return True

    def prompt(self, user_id: str, observation: Dict[str, Any]) -> bool:
        """Record a prompt decision; returns whether one was issued."""
        if not self.should_prompt(user_id, observation):
            return False
        self._last_prompt[user_id] = observation.get("taken_at", 0.0)
        self.prompts_issued += 1
        return True

    # -- submissions ------------------------------------------------------------

    def submit(
        self,
        user_id: str,
        rating: int,
        text: str = "",
        zone: str = "NOLOC",
        taken_at: float = 0.0,
        noise_dba: Optional[float] = None,
    ) -> int:
        """Store one feedback entry; returns its id.

        ``rating`` is the perceived annoyance on a 1 (fine) to 5
        (unbearable) scale. Public feedback is also routed to the
        (zone, Feedback) exchange — Figure 3's feedback reports.
        """
        if not 1 <= rating <= 5:
            raise ValidationError("rating must be in 1..5")
        feedback_id = next(self._ids)
        self._feedback.insert_one(
            {
                "feedback_id": feedback_id,
                "contributor": self._privacy.pseudonym(user_id),
                "rating": rating,
                "text": text,
                "zone": zone,
                "taken_at": taken_at,
                "noise_dba": noise_dba,
            }
        )
        if self._broker is not None:
            exchange = ChannelManager.app_exchange(self._app_id)
            if self._broker.has_exchange(exchange):
                self._broker.publish(
                    exchange,
                    Message(
                        routing_key=f"{zone}.Feedback",
                        body={"rating": rating, "text": text, "zone": zone},
                    ),
                )
        return feedback_id

    def for_user(self, user_id: str) -> List[Dict[str, Any]]:
        """All feedback by ``user_id``."""
        pseudonym = self._privacy.pseudonym(user_id)
        return self._feedback.find({"contributor": pseudonym}).sort(
            "taken_at"
        ).to_list()

    # -- the sensitivity profile (§8's stated goal) -----------------------------------

    def sensitivity_profile(self, user_id: str) -> Dict[str, Any]:
        """The user's noise-sensitivity estimate.

        Regresses perceived annoyance on measured level across the
        user's feedback: the slope is the sensitivity (ratings rising
        steeply with dB = sensitive user), the 3-rating crossing level
        is their personal tolerance threshold.
        """
        entries = [
            e for e in self.for_user(user_id) if e.get("noise_dba") is not None
        ]
        if len(entries) < 3:
            raise NotFoundError(
                f"not enough rated measurements for {user_id!r} (need 3)"
            )
        import numpy as np

        levels = np.array([e["noise_dba"] for e in entries], dtype=float)
        ratings = np.array([e["rating"] for e in entries], dtype=float)
        if float(np.std(levels)) < 1e-9:
            raise ValidationError("feedback levels are degenerate")
        design = np.column_stack([levels, np.ones_like(levels)])
        (slope, intercept), _, _, _ = np.linalg.lstsq(design, ratings, rcond=None)
        threshold = (3.0 - intercept) / slope if slope != 0 else float("inf")
        return {
            "user_id": user_id,
            "samples": len(entries),
            "sensitivity_per_db": round(float(slope), 4),
            "tolerance_dba": round(float(threshold), 1),
        }
