"""Journey management: the participatory mode's server side.

§4.2: "the user engages in the measurement of noise across a journey and
defines the sensing frequency ... With the Journey mode, users may
further share their observations publicly or within a community."
Figure 3 shows journey announcements routed to subscribers of the
(location, ``Journey``) exchange.

A journey record references its observations by (contributor, time
window); statistics (Leq, track length, localization quality) are
computed from the store on demand.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.broker.broker import Broker
from repro.core.channels import ChannelManager
from repro.core.datamgmt import OBSERVATIONS
from repro.core.errors import AuthorizationError, NotFoundError, ValidationError
from repro.core.privacy import PrivacyPolicy
from repro.docstore.store import DocumentStore
from repro.noise.spl import leq


class Visibility(enum.Enum):
    """Who can see a journey."""

    PRIVATE = "private"
    COMMUNITY = "community"
    PUBLIC = "public"


@dataclass
class Journey:
    """One recorded journey."""

    journey_id: int
    owner_id: str
    title: str
    started_at: float
    ended_at: float
    home_zone: str
    visibility: Visibility = Visibility.PRIVATE


class JourneyService:
    """Creates, shares, and summarizes journeys."""

    def __init__(
        self,
        store: DocumentStore,
        privacy: PrivacyPolicy,
        broker: Optional[Broker] = None,
        app_id: str = "SC",
    ) -> None:
        self._journeys = store.collection("journeys")
        self._journeys.create_index("owner", kind="hash", exist_ok=True)
        self._observations = store.collection(OBSERVATIONS)
        self._privacy = privacy
        self._broker = broker
        self._app_id = app_id
        self._ids = itertools.count(1)

    # -- lifecycle ------------------------------------------------------------

    def create(
        self,
        owner_id: str,
        title: str,
        started_at: float,
        ended_at: float,
        home_zone: str = "Z0-0",
    ) -> Journey:
        """Record a finished journey."""
        if not title:
            raise ValidationError("journey title must be non-empty")
        if ended_at <= started_at:
            raise ValidationError("journey must end after it starts")
        journey = Journey(
            journey_id=next(self._ids),
            owner_id=owner_id,
            title=title,
            started_at=started_at,
            ended_at=ended_at,
            home_zone=home_zone,
        )
        self._journeys.insert_one(
            {
                "journey_id": journey.journey_id,
                "owner": self._privacy.pseudonym(owner_id),
                "title": title,
                "started_at": started_at,
                "ended_at": ended_at,
                "home_zone": home_zone,
                "visibility": journey.visibility.value,
            }
        )
        return journey

    def get(self, journey_id: int) -> Dict[str, Any]:
        """The stored journey document."""
        doc = self._journeys.find_one({"journey_id": journey_id})
        if doc is None:
            raise NotFoundError(f"unknown journey {journey_id}")
        return doc

    def share(
        self, owner_id: str, journey_id: int, visibility: Visibility
    ) -> None:
        """Change a journey's visibility; announces public journeys.

        Publishing the announcement through the app exchange reaches
        every subscriber of the (home zone, Journey) routing exchange —
        Figure 3's "new public Journeys notifications".
        """
        doc = self.get(journey_id)
        if doc["owner"] != self._privacy.pseudonym(owner_id):
            raise AuthorizationError("only the owner may share a journey")
        self._journeys.update_one(
            {"journey_id": journey_id},
            {"$set": {"visibility": visibility.value}},
        )
        if visibility is Visibility.PUBLIC and self._broker is not None:
            exchange = ChannelManager.app_exchange(self._app_id)
            if self._broker.has_exchange(exchange):
                from repro.broker.message import Message

                self._broker.publish(
                    exchange,
                    Message(
                        routing_key=f"{doc['home_zone']}.Journey",
                        body={
                            "journey_id": journey_id,
                            "title": doc["title"],
                            "zone": doc["home_zone"],
                        },
                    ),
                )

    # -- listings ---------------------------------------------------------------

    def for_user(self, user_id: str) -> List[Dict[str, Any]]:
        """All journeys of ``user_id`` (any visibility)."""
        pseudonym = self._privacy.pseudonym(user_id)
        return self._journeys.find({"owner": pseudonym}).sort("started_at").to_list()

    def public(self, zone: Optional[str] = None) -> List[Dict[str, Any]]:
        """Public journeys, optionally filtered by home zone."""
        filter_doc: Dict[str, Any] = {"visibility": Visibility.PUBLIC.value}
        if zone is not None:
            filter_doc["home_zone"] = zone
        return self._journeys.find(filter_doc).sort("started_at").to_list()

    # -- statistics ---------------------------------------------------------------

    def observations_of(self, journey_id: int) -> List[Dict[str, Any]]:
        """The journey-mode observations inside the journey's window."""
        doc = self.get(journey_id)
        return self._observations.find(
            {
                "contributor": doc["owner"],
                "mode": "journey",
                "taken_at": {"$gte": doc["started_at"], "$lte": doc["ended_at"]},
            }
        ).sort("taken_at").to_list()

    def summary(self, journey_id: int) -> Dict[str, Any]:
        """Leq, sample count, localization quality, and track length."""
        doc = self.get(journey_id)
        observations = self.observations_of(journey_id)
        if not observations:
            raise NotFoundError(f"journey {journey_id} has no observations")
        levels = [o["noise_dba"] for o in observations]
        localized = [o for o in observations if "location" in o]
        track_m = 0.0
        for previous, current in zip(localized, localized[1:]):
            track_m += float(
                np.hypot(
                    current["location"]["x_m"] - previous["location"]["x_m"],
                    current["location"]["y_m"] - previous["location"]["y_m"],
                )
            )
        return {
            "journey_id": journey_id,
            "title": doc["title"],
            "samples": len(observations),
            "localized": len(localized),
            "leq_dba": round(leq(levels), 2),
            "max_dba": round(max(levels), 2),
            "track_length_m": round(track_m, 1),
            "duration_s": doc["ended_at"] - doc["started_at"],
        }
