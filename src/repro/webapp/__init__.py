"""The SoundCity application server (Figure 1's "Web app server").

The paper's Figure 1 deploys, next to the GoFlow middleware, a Web
application server that "maintains data about the contributing users in
an anonymized way, so that specific contributions may be retrieved
provided the user's credentials". §4.2 lists the three user experiences
it powers and §8 sketches the feedback loop. This package implements
all of them over the GoFlow core:

- :mod:`repro.webapp.exposure` — *Quantified self*: daily and monthly
  noise-exposure summaries (energy-mean Leq) with WHO health guidance
  (Figure 6 left/middle);
- :mod:`repro.webapp.journeys` — the *Journey* participatory mode's
  server side: journey records, per-journey statistics, and public
  sharing through the broker's (location, Journey) routing exchanges
  (Figure 6 right, Figure 3's Journey notifications);
- :mod:`repro.webapp.feedback` — *qualitative feedback* (§8 future
  work): submissions, and the measurement-triggered prompt policy
  ("trigger it at some proper times, to be determined by the available
  quantitative information");
- :mod:`repro.webapp.server` — the REST surface tying them together.
"""

from repro.webapp.exposure import ExposureService, ExposureSummary, WHO_BANDS
from repro.webapp.journeys import Journey, JourneyService, Visibility
from repro.webapp.feedback import FeedbackService, PromptPolicy
from repro.webapp.server import SoundCityApp

__all__ = [
    "ExposureService",
    "ExposureSummary",
    "FeedbackService",
    "Journey",
    "JourneyService",
    "PromptPolicy",
    "SoundCityApp",
    "Visibility",
    "WHO_BANDS",
]
