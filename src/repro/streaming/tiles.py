"""Incremental noise-map tiles.

The live map the paper's deployment served per-participant is a grid of
noise levels. The poll-era answer recomputed each tile from the stored
observations; the subscription plane instead folds each observation
into its region's tile **at ingest** — an O(1) update per document —
and pushes the post-fold tile state as a delta event, so a map client's
staleness is bounded by fan-out latency, not by a recompute.

Fold ≡ recompute: :class:`TileDeltaEngine` applied to a document
sequence produces, tile by tile, exactly the state
:func:`tiles_from_documents` computes from scratch over the same
sequence in the same order (floating-point sums included — both run the
same left fold). Delta events carry absolute tile state, so folding a
delta stream is last-wins per region (:func:`fold_tile_deltas`) and a
dropped intermediate delta only costs staleness, never correctness.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.sharding.region import DEFAULT_CELL_M, region_of


def _noise_sample(document: Dict[str, Any]) -> Optional[float]:
    value = document.get("noise_dba")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return None


def _new_tile() -> Dict[str, Any]:
    return {
        "count": 0,
        "samples": 0,
        "sum_dba": 0.0,
        "min_dba": None,
        "max_dba": None,
    }


class TileDeltaEngine:
    """Per-region tile accumulators updated one observation at a time.

    Not internally locked: the :class:`~repro.streaming.subscriptions.
    SubscriptionManager` owns one and mutates it under its own lock.
    """

    def __init__(self, cell_m: float = DEFAULT_CELL_M) -> None:
        self.cell_m = cell_m
        self._tiles: Dict[str, Dict[str, Any]] = {}
        self.deltas = 0

    def __len__(self) -> int:
        return len(self._tiles)

    def observe(
        self, document: Dict[str, Any], region: Optional[str] = None
    ) -> Dict[str, Any]:
        """Fold one observation; returns the region's post-fold state.

        The returned dict is a private copy — callers may ship it as a
        delta event body without freezing the accumulator.
        """
        if region is None:
            region = region_of(document, self.cell_m)
        tile = self._tiles.get(region)
        if tile is None:
            tile = self._tiles[region] = _new_tile()
        tile["count"] += 1
        sample = _noise_sample(document)
        if sample is not None:
            tile["samples"] += 1
            tile["sum_dba"] += sample
            if tile["min_dba"] is None or sample < tile["min_dba"]:
                tile["min_dba"] = sample
            if tile["max_dba"] is None or sample > tile["max_dba"]:
                tile["max_dba"] = sample
        self.deltas += 1
        return {"region": region, **tile}

    def tile(self, region: str) -> Optional[Dict[str, Any]]:
        """A copy of one region's current tile state (None if unseen)."""
        tile = self._tiles.get(region)
        return None if tile is None else dict(tile)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A copy of every tile, keyed by region."""
        return {region: dict(tile) for region, tile in self._tiles.items()}


def tiles_from_documents(
    documents: Iterable[Dict[str, Any]], cell_m: float = DEFAULT_CELL_M
) -> Dict[str, Dict[str, Any]]:
    """From-scratch tile recompute — the oracle the fold must equal.

    Iterate in global insertion (``_id``) order to reproduce the ingest
    fold exactly, bit-identical float sums included.
    """
    engine = TileDeltaEngine(cell_m)
    for document in documents:
        engine.observe(document)
    return engine.snapshot()


def fold_tile_deltas(events: Iterable[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Fold a delta-event stream into map state: last delta wins per
    region, because each delta carries the absolute post-fold tile."""
    tiles: Dict[str, Dict[str, Any]] = {}
    for event in events:
        if event.get("kind") != "tile":
            continue
        tiles[event["region"]] = {
            "count": event["count"],
            "samples": event["samples"],
            "sum_dba": event["sum_dba"],
            "min_dba": event["min_dba"],
            "max_dba": event["max_dba"],
        }
    return tiles


def observation_events(events: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The observation-kind events of a mixed stream (markers dropped)."""
    return [event for event in events if event.get("kind") == "observation"]
