"""Continuous-query filter specifications.

A :class:`FilterSpec` is the standing predicate of one live
subscription: which observations the subscriber wants pushed. The
filterable dimensions mirror the routing dimensions the rest of the
middleware already speaks — owning app, datatype, device model, the
sharding layer's location grid cell (:func:`repro.sharding.region.
region_of`, 500 m cells by default), and a ``taken_at`` window.

Every dimension is *ingest-stable*: the privacy scrub rewrites
``user_id``/``obs_id`` but never touches these fields, so the same spec
matches identically against the wire form (what the sharded router
sees) and the stored form (what the unsharded ingest path sees). That
is the property the push ≡ poll oracle leans on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Optional

from repro.core.errors import ValidationError
from repro.sharding.region import DEFAULT_CELL_M, region_of

#: the datatype an observation without an explicit ``datatype`` field
#: carries — the same default the sharded notification plane stamps.
DEFAULT_DATATYPE = "Observation"


def datatype_of(document: Dict[str, Any]) -> str:
    """The datatype a document publishes under."""
    return document.get("datatype") or DEFAULT_DATATYPE


@dataclass(frozen=True)
class FilterSpec:
    """One subscription's standing predicate (every field optional).

    Attributes:
        app_id: only observations ingested for this app.
        datatype: only this datatype (``"Observation"`` matches
            documents without an explicit datatype field).
        model: only this device model.
        regions: only observations whose region routing key (grid
            cell / day bucket / ``"default"``) is in this set.
        since: only ``taken_at >= since``.
        until: only ``taken_at < until``.
    """

    app_id: Optional[str] = None
    datatype: Optional[str] = None
    model: Optional[str] = None
    regions: Optional[FrozenSet[str]] = None
    since: Optional[float] = None
    until: Optional[float] = None

    def matches(
        self, app_id: str, document: Dict[str, Any], region: str
    ) -> bool:
        """Whether one stored/wire observation satisfies this spec."""
        if self.app_id is not None and app_id != self.app_id:
            return False
        if self.datatype is not None and datatype_of(document) != self.datatype:
            return False
        if self.model is not None and document.get("model") != self.model:
            return False
        if self.regions is not None and region not in self.regions:
            return False
        if self.since is not None or self.until is not None:
            taken_at = document.get("taken_at")
            if not isinstance(taken_at, (int, float)) or isinstance(taken_at, bool):
                return False
            if self.since is not None and taken_at < self.since:
                return False
            if self.until is not None and taken_at >= self.until:
                return False
        return True

    def matches_document(
        self, app_id: str, document: Dict[str, Any], cell_m: float = DEFAULT_CELL_M
    ) -> bool:
        """Convenience: derive the region key, then match."""
        return self.matches(app_id, document, region_of(document, cell_m))

    def wants_region(self, region: str) -> bool:
        """Whether tile deltas for ``region`` pass the region filter."""
        return self.regions is None or region in self.regions

    @classmethod
    def from_body(cls, app_id: str, body: Dict[str, Any]) -> "FilterSpec":
        """Build a spec from a REST subscription body.

        The path's ``app_id`` is forced into the spec: a subscriber only
        ever streams the app it authenticated against.
        """
        regions = body.get("regions")
        if regions is not None:
            if not isinstance(regions, (list, tuple, set, frozenset)) or not all(
                isinstance(region, str) for region in regions
            ):
                raise ValidationError("'regions' must be a list of region keys")
            regions = frozenset(regions)
        for bound in ("since", "until"):
            value = body.get(bound)
            if value is not None and (
                not isinstance(value, (int, float)) or isinstance(value, bool)
            ):
                raise ValidationError(f"{bound!r} must be numeric")
        for text in ("datatype", "model"):
            value = body.get(text)
            if value is not None and not isinstance(value, str):
                raise ValidationError(f"{text!r} must be a string")
        return cls(
            app_id=app_id,
            datatype=body.get("datatype"),
            model=body.get("model"),
            regions=regions,
            since=body.get("since"),
            until=body.get("until"),
        )
