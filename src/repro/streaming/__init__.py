"""The live subscription plane: continuous queries, push-based tile
deltas, and per-subscriber backpressure."""

from repro.streaming.filters import DEFAULT_DATATYPE, FilterSpec, datatype_of
from repro.streaming.subscriptions import (
    DEFAULT_MAX_OVERRUNS,
    DEFAULT_OUTBOX_CAPACITY,
    Subscription,
    SubscriptionManager,
    observation_event,
)
from repro.streaming.tiles import (
    TileDeltaEngine,
    fold_tile_deltas,
    observation_events,
    tiles_from_documents,
)

__all__ = [
    "DEFAULT_DATATYPE",
    "DEFAULT_MAX_OVERRUNS",
    "DEFAULT_OUTBOX_CAPACITY",
    "FilterSpec",
    "Subscription",
    "SubscriptionManager",
    "TileDeltaEngine",
    "datatype_of",
    "fold_tile_deltas",
    "observation_event",
    "observation_events",
    "tiles_from_documents",
]
