"""The live subscription plane: continuous queries with backpressure.

One :class:`SubscriptionManager` per server. Registration installs a
standing :class:`~repro.streaming.filters.FilterSpec`; the ingest path
(``DataManager`` listener unsharded, router delta listener sharded)
calls :meth:`SubscriptionManager.on_stored` with every *stored*
observation, and the manager fans matching events out to per-subscriber
bounded outboxes — the same drop-oldest
:class:`~repro.client.buffer.ObservationBuffer` machinery the phone
uses, pointed the other way.

Isolation: subscription ids are sequential and therefore guessable, so
each subscription records the principal scope (``owner_app``,
``owner_user``) it was created under, and polls/deletes from any other
scope 404 exactly like a bogus id. Tile aggregates are scoped the same
way: an app-filtered subscription streams tiles folded from that app's
observations only (a per-app :class:`~repro.streaming.tiles.
TileDeltaEngine`), while the global engine remains the deliberate
cross-app map surface for unscoped, in-process consumers.

Event projection and privacy: a pushed observation event carries only
the ingest-stable projection ``{_id, region, app_id, datatype, model,
noise_dba, taken_at}`` — never the document body. The scrubbed
``user_id`` and the per-client ``obs_id`` stamp cannot leak because
they are never projected, and per-app private fields (stripped only at
*sharing* time) never enter an event either.

Backpressure, per subscriber (no head-of-line blocking — each
subscription owns its outbox and its cursor space):

1. the outbox is capacity-bounded; overflow drops the **oldest**
   undelivered event (freshest-data-wins, like the phone outbox);
2. a poll that lands after drops sees one ``lagged`` marker naming the
   missed cursor range, then resumes from what survived;
3. a subscriber that keeps overrunning — more than ``max_overruns``
   events dropped — is **evicted**: its outbox is discarded and polls
   report ``state == "evicted"`` until it unsubscribes.

Cursors are per-subscription, contiguous from 1, assigned under the
manager's lock at fan-out time: a drained stream is gap-free and
duplicate-free in cursor order, which is exactly what the soak legs
assert under 8-thread ingest.

Staleness model: events are stamped with the simulated clock
(``emitted_at``) *and* a wall clock (``emitted_wall``, ``time.
perf_counter`` by default). Tile staleness — the benchmark's p99 — is
measured wall-to-wall: drain time minus ``emitted_wall`` of the folded
tile delta.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro import concurrency
from repro.client.buffer import ObservationBuffer
from repro.core.errors import NotFoundError, ValidationError
from repro.sharding.region import DEFAULT_CELL_M, region_of
from repro.streaming.filters import FilterSpec, datatype_of
from repro.streaming.tiles import TileDeltaEngine

#: default per-subscriber outbox bound (events, not bytes)
DEFAULT_OUTBOX_CAPACITY = 1024
#: default dropped-event budget before a slow consumer is evicted
DEFAULT_MAX_OVERRUNS = 4096


def observation_event(
    document: Dict[str, Any], doc_id: Any, app_id: str, region: str
) -> Dict[str, Any]:
    """The push projection of one stored observation.

    Computable identically from the wire form and the stored form — the
    fields below are exactly the ones the ingest scrub never touches.
    """
    return {
        "kind": "observation",
        "_id": doc_id,
        "region": region,
        "app_id": app_id,
        "datatype": datatype_of(document),
        "model": document.get("model"),
        "noise_dba": document.get("noise_dba"),
        "taken_at": document.get("taken_at"),
    }


class Subscription:
    """One continuous query and its delivery state."""

    def __init__(
        self,
        sub_id: str,
        spec: FilterSpec,
        observations: bool,
        tiles: bool,
        capacity: Optional[int],
        max_overruns: Optional[int],
        owner_app: Optional[str] = None,
        owner_user: Optional[str] = None,
    ) -> None:
        self.sub_id = sub_id
        self.spec = spec
        self.observations = observations
        self.tiles = tiles
        self.capacity = capacity
        self.max_overruns = max_overruns
        #: principal scope stamped at subscribe time. Sub ids are
        #: guessable (sub-1, sub-2, ...), so possession of an id is not
        #: authorization: polls and deletes must come from the owning
        #: app (and, when recorded, the owning user) or they 404.
        self.owner_app = owner_app
        self.owner_user = owner_user
        self.outbox = ObservationBuffer(capacity=capacity)
        #: next cursor to assign (cursors are contiguous from 1)
        self.next_cursor = 1
        #: highest cursor the consumer has acknowledged
        self.acked = 0
        self.state = "live"
        self.delivered = 0
        self.dropped = 0
        self.overruns = 0
        self.lagged_markers = 0
        self.polls = 0
        self._eviction_reported = False

    def info(self) -> Dict[str, Any]:
        """Observability snapshot (caller holds the manager lock)."""
        return {
            "state": self.state,
            "owner_app": self.owner_app,
            "pending": len(self.outbox),
            "acked": self.acked,
            "next_cursor": self.next_cursor,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "overruns": self.overruns,
            "lagged_markers": self.lagged_markers,
            "polls": self.polls,
            "capacity": self.capacity,
            "max_overruns": self.max_overruns,
        }


class SubscriptionManager:
    """Registers continuous queries and fans stored observations out.

    Args:
        clock: simulated-time source (event ``emitted_at`` stamps).
        wall_clock: real-time source for staleness measurement
            (``emitted_wall`` stamps); defaults to ``time.perf_counter``.
        cell_m: region grid cell size — must match the sharding
            layer's so a subscription's region filter and the router's
            placement speak the same keys.
        default_capacity: outbox bound when ``subscribe`` passes none.
        default_max_overruns: eviction budget when none is passed.

    Subscriptions are deliberately **transient** (never journaled): a
    recovered durable server starts with an empty manager, so a crash
    can never leave phantom cursors behind — consumers re-subscribe and
    stream post-recovery deltas only.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        wall_clock: Optional[Callable[[], float]] = None,
        cell_m: float = DEFAULT_CELL_M,
        default_capacity: int = DEFAULT_OUTBOX_CAPACITY,
        default_max_overruns: int = DEFAULT_MAX_OVERRUNS,
    ) -> None:
        self._clock = clock or (lambda: 0.0)
        self._wall = wall_clock or time.perf_counter
        self._cell_m = cell_m
        self._default_capacity = default_capacity
        self._default_max_overruns = default_max_overruns
        #: one lock covers the registry, every outbox, every cursor and
        #: the tile engine: cursor assignment and outbox append must be
        #: atomic per event, or a drained stream shows gaps/duplicates.
        self._lock = concurrency.make_rlock()
        self._subs: Dict[str, Subscription] = {}
        self._ids = itertools.count(1)
        #: the global tile accumulator — every app's observations fold
        #: in. Serves app-unscoped subscriptions and direct snapshots.
        self.tiles = TileDeltaEngine(cell_m)
        #: per-app tile accumulators, fed in lockstep with the global
        #: one: a subscription whose spec names an app streams *these*
        #: tiles, so its aggregates never include other apps' data.
        self._app_tiles: Dict[str, TileDeltaEngine] = {}
        self._created = 0
        self._unsubscribed = 0
        self._evictions = 0
        self._fanned_out = 0
        self._dropped = 0
        self._lagged = 0
        self._polls = 0
        #: post-confirm deliveries observed through the broker tap
        self._confirmed_deliveries = 0

    @property
    def cell_m(self) -> float:
        """Region grid cell size the manager filters and tiles by."""
        return self._cell_m

    # -- registration --------------------------------------------------------

    def subscribe(
        self,
        spec: Optional[FilterSpec] = None,
        observations: bool = True,
        tiles: bool = False,
        capacity: Optional[int] = None,
        max_overruns: Optional[int] = None,
        owner_app: Optional[str] = None,
        owner_user: Optional[str] = None,
    ) -> str:
        """Register a continuous query; returns the subscription id.

        ``capacity``/``max_overruns``: per-subscriber backpressure
        knobs; None takes the manager defaults, 0 ``max_overruns``
        disables eviction (drop-oldest forever).

        ``owner_app``/``owner_user``: the principal scope recorded on
        the subscription — the REST layer always passes both, and
        ``next_events``/``unsubscribe`` then 404 any caller whose path
        app or authenticated user doesn't match. In-process callers may
        leave them None (an unowned subscription skips the check).
        """
        if not observations and not tiles:
            raise ValidationError(
                "subscription must request observations, tiles, or both"
            )
        if capacity is not None and capacity < 1:
            raise ValidationError(f"capacity must be >= 1, got {capacity}")
        if max_overruns is not None and max_overruns < 0:
            raise ValidationError(
                f"max_overruns must be >= 0, got {max_overruns}"
            )
        if capacity is None:
            capacity = self._default_capacity
        if max_overruns is None:
            max_overruns = self._default_max_overruns
        with self._lock:
            sub_id = f"sub-{next(self._ids)}"
            self._subs[sub_id] = Subscription(
                sub_id,
                spec or FilterSpec(),
                observations,
                tiles,
                capacity,
                max_overruns,
                owner_app=owner_app,
                owner_user=owner_user,
            )
            self._created += 1
            return sub_id

    def _checked(
        self,
        sub_id: str,
        app_id: Optional[str],
        user_id: Optional[str],
    ) -> Subscription:
        """Look a subscription up, enforcing principal scope.

        Caller holds the manager lock. An owned subscription is only
        visible to its owning app (and owning user, when one was
        recorded); a mismatch raises the same :class:`NotFoundError` a
        bogus id does, so a prober can't distinguish "not yours" from
        "doesn't exist". ``None`` check values skip that dimension —
        the trusted in-process surface.
        """
        sub = self._subs.get(sub_id)
        if sub is not None:
            if (
                sub.owner_app is not None
                and app_id is not None
                and app_id != sub.owner_app
            ):
                sub = None
            elif (
                sub.owner_user is not None
                and user_id is not None
                and user_id != sub.owner_user
            ):
                sub = None
        if sub is None:
            raise NotFoundError(f"unknown subscription {sub_id!r}")
        return sub

    def unsubscribe(
        self,
        sub_id: str,
        app_id: Optional[str] = None,
        user_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Remove a subscription (evicted ones included).

        ``app_id``/``user_id``: the caller's scope — an owned
        subscription 404s unless they match its owner.
        """
        with self._lock:
            sub = self._checked(sub_id, app_id, user_id)
            del self._subs[sub_id]
            self._unsubscribed += 1
            return {"removed": True, "state": sub.state}

    def get(self, sub_id: str) -> Subscription:
        """The live subscription object (tests, observability)."""
        with self._lock:
            sub = self._subs.get(sub_id)
            if sub is None:
                raise NotFoundError(f"unknown subscription {sub_id!r}")
            return sub

    # -- ingest-side fan-out -------------------------------------------------

    def on_stored(
        self, app_id: str, pairs: Iterable[Tuple[Dict[str, Any], Any]]
    ) -> None:
        """Fan freshly stored observations out to matching outboxes.

        ``pairs`` are ``(document, stored_id)`` in insertion order —
        the unsharded ingest listener passes stored forms, the router's
        delta listener wire forms; the event projection is identical
        either way. The whole fan-out runs under the manager lock so
        per-subscription cursors stay contiguous.

        Tile scoping: every observation folds into the global tile
        engine *and* into its app's engine. A subscription whose spec
        names an app (every REST subscription — ``FilterSpec.
        from_body`` forces the path app in) streams the app-scoped
        tiles, so its aggregates carry that app's data only; an
        app-unscoped spec streams the global map.
        """
        with self._lock:
            emitted_at = self._clock()
            emitted_wall = self._wall()
            subs = list(self._subs.values())
            app_engine = self._app_tiles.get(app_id)
            if app_engine is None:
                app_engine = self._app_tiles[app_id] = TileDeltaEngine(
                    self._cell_m
                )
            for document, doc_id in pairs:
                region = region_of(document, self._cell_m)
                event = observation_event(document, doc_id, app_id, region)
                event["emitted_at"] = emitted_at
                event["emitted_wall"] = emitted_wall
                global_state = self.tiles.observe(document, region)
                app_state = app_engine.observe(document, region)
                #: tile events by scope (None = global, str = that
                #: app), built lazily once per stored document
                tile_events: Dict[Optional[str], Dict[str, Any]] = {}
                for sub in subs:
                    if sub.state != "live":
                        continue
                    if sub.observations and sub.spec.matches(
                        app_id, document, region
                    ):
                        self._push(sub, event)
                    if (
                        sub.state == "live"
                        and sub.tiles
                        and sub.spec.wants_region(region)
                    ):
                        scope = sub.spec.app_id
                        if scope is not None and scope != app_id:
                            # another app's observation: this sub's
                            # tiles are untouched, nothing to push.
                            continue
                        tile_event = tile_events.get(scope)
                        if tile_event is None:
                            tile_event = tile_events[scope] = {
                                "kind": "tile",
                                **(
                                    global_state
                                    if scope is None
                                    else app_state
                                ),
                                "emitted_at": emitted_at,
                                "emitted_wall": emitted_wall,
                            }
                        self._push(sub, tile_event)

    def _push(self, sub: Subscription, event: Dict[str, Any]) -> None:
        """Stamp the next cursor and append; applies the drop policy."""
        stamped = dict(event)
        stamped["cursor"] = sub.next_cursor
        sub.next_cursor += 1
        sub.delivered += 1
        self._fanned_out += 1
        evicted = sub.outbox.push(stamped)
        if evicted:
            sub.dropped += len(evicted)
            sub.overruns += len(evicted)
            self._dropped += len(evicted)
            if sub.max_overruns and sub.overruns >= sub.max_overruns:
                # the slow consumer exhausted its budget: discard the
                # outbox (those events were never going to be drained
                # in time anyway) and stop fanning out to it.
                sub.state = "evicted"
                sub.outbox.drain()
                self._evictions += 1

    # -- broker delivery tap -------------------------------------------------

    def on_broker_delivery(self, queue_name: str, message: Any) -> None:
        """Post-confirm broker tap: counts deliveries that reached a
        queue. The streaming plane's evidence that push happens *after*
        the broker took responsibility — by the time the tap fires for
        an ingest delivery, the matching events are already fanned out
        (the consumer dispatch ran inside the enqueue)."""
        with self._lock:
            self._confirmed_deliveries += 1

    # -- consumer side -------------------------------------------------------

    def next_events(
        self,
        sub_id: str,
        ack: Optional[int] = None,
        limit: int = 100,
        app_id: Optional[str] = None,
        user_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Long-poll surface: acknowledge up to ``ack``, return what's
        pending past it (at-least-once — unacked events are re-served).

        The response's ``events`` may start with a ``lagged`` marker
        when backpressure dropped events since the last poll; ``cursor``
        is the ack value that acknowledges everything returned.
        Returned events are copies — mutating them never corrupts the
        queued originals that an unacked re-poll will serve again.

        ``app_id``/``user_id``: the caller's scope — an owned
        subscription 404s unless they match its owner.
        """
        if limit < 1:
            raise ValidationError(f"limit must be >= 1, got {limit}")
        with self._lock:
            sub = self._checked(sub_id, app_id, user_id)
            sub.polls += 1
            self._polls += 1
            if ack is not None:
                if ack < 0:
                    raise ValidationError(f"ack must be >= 0, got {ack}")
                sub.acked = min(max(sub.acked, ack), sub.next_cursor - 1)
                sub.outbox.pop_while(
                    lambda event: event["cursor"] <= sub.acked
                )
            if sub.state == "evicted":
                events: List[Dict[str, Any]] = []
                if not sub._eviction_reported:
                    sub._eviction_reported = True
                    events.append(
                        {"kind": "evicted", "overruns": sub.overruns}
                    )
                return {
                    "subscription_id": sub_id,
                    "state": "evicted",
                    "events": events,
                    "cursor": sub.acked,
                    "pending": 0,
                }
            pending = sub.outbox.peek_all()
            events = []
            front = pending[0]["cursor"] if pending else sub.next_cursor
            if front > sub.acked + 1:
                # the drop-oldest policy consumed the gap: surface it
                # once, then resume from the oldest surviving event.
                events.append(
                    {
                        "kind": "lagged",
                        "missed_from": sub.acked + 1,
                        "missed_to": front - 1,
                        "missed": front - 1 - sub.acked,
                    }
                )
                sub.acked = front - 1
                sub.lagged_markers += 1
                self._lagged += 1
            returned = 0
            cursor = sub.acked
            for event in pending:
                if event["cursor"] <= sub.acked:
                    continue
                if returned >= limit:
                    break
                events.append(dict(event))
                cursor = event["cursor"]
                returned += 1
            return {
                "subscription_id": sub_id,
                "state": sub.state,
                "events": events,
                "cursor": cursor,
                "pending": len(pending) - returned,
            }

    # -- map surface ---------------------------------------------------------

    def tiles_snapshot(
        self,
        region: Optional[str] = None,
        app_id: Optional[str] = None,
    ) -> Dict[str, Dict[str, Any]]:
        """Current live-map tile state (one region, or all of them).

        ``app_id`` selects that app's scoped tile engine — aggregates
        over its observations only; ``None`` is the global map.
        """
        with self._lock:
            if app_id is None:
                engine: Optional[TileDeltaEngine] = self.tiles
            else:
                engine = self._app_tiles.get(app_id)
            if engine is None:
                return {}
            if region is not None:
                tile = engine.tile(region)
                return {} if tile is None else {region: tile}
            return engine.snapshot()

    # -- observability -------------------------------------------------------

    def subscription_info(self, sub_id: str) -> Dict[str, Any]:
        with self._lock:
            sub = self._subs.get(sub_id)
            if sub is None:
                raise NotFoundError(f"unknown subscription {sub_id!r}")
            return sub.info()

    def stats(self) -> Dict[str, Any]:
        """The ``middleware_stats()["streaming"]`` section."""
        with self._lock:
            live = sum(1 for sub in self._subs.values() if sub.state == "live")
            return {
                "subscriptions": live,
                "created": self._created,
                "unsubscribed": self._unsubscribed,
                "evicted": self._evictions,
                "fanned_out": self._fanned_out,
                "dropped": self._dropped,
                "lagged_markers": self._lagged,
                "polls": self._polls,
                "tiles": {
                    "regions": len(self.tiles),
                    "deltas": self.tiles.deltas,
                    "app_engines": len(self._app_tiles),
                },
                "broker_tap": {
                    "confirmed_deliveries": self._confirmed_deliveries
                },
            }
