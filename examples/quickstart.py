#!/usr/bin/env python
"""Quickstart: stand up GoFlow, enroll a phone, sense, and query back.

Walks the full Figure 1 path in ~30 lines of API:

1. start a GoFlow server (broker + document store + REST API);
2. register the SoundCity app and enroll a user — the server creates the
   client's AMQP exchange/queue (Figure 3) and returns their ids;
3. run an hour of opportunistic sensing on a simulated OnePlus One;
4. query the stored observations back through the REST API;
5. batch-upload a second phone's backlog in one POST per 100
   observations — the batch fast path with exactly-once delivery.

Run:  python examples/quickstart.py
"""

from repro.client import AppVersion, BrokerUplink, GoFlowClient
from repro.client.uplink import RestBatchUplink
from repro.core import GoFlowServer, Request
from repro.devices import DeviceRegistry
from repro.sensing import PhoneContext, SensingScheduler
from repro.simulation import Simulator
from repro.webapp import SoundCityApp


def main() -> None:
    # -- middleware --------------------------------------------------------
    simulator = Simulator(seed=2016)
    server = GoFlowServer(clock=lambda: simulator.now)
    server.register_app("SC", private_fields=["activity"])
    credentials = server.enroll_user("SC", "alice", "s3cret")
    print(f"alice logged in; exchange={credentials['exchange']} "
          f"queue={credentials['queue']}")

    # -- the phone ----------------------------------------------------------
    model = DeviceRegistry().get("A0001")  # OnePlus One
    uplink = BrokerUplink(server.broker, credentials["exchange"], app_id="SC")
    client = GoFlowClient(
        "alice", AppVersion.V1_3, uplink, clock=lambda: simulator.now
    )
    scheduler = SensingScheduler(
        simulator,
        "alice",
        model,
        PhoneContext(x_m=2500.0, y_m=4100.0),
        client.on_observation,
        simulator.rngs.stream("phone.alice"),
        opportunistic_period_s=300.0,  # the paper's 5-minute default
    )

    # -- one hour of background sensing + one manual "sense now" -----------------
    scheduler.start_opportunistic(until=3600.0)
    simulator.at(1800.0, scheduler.sense_now)
    simulator.run_until(3600.0)
    client.flush()  # v1.3 buffers 10 observations; push the remainder

    print(f"produced={scheduler.produced} observations; "
          f"server ingested={server.ingested}")

    # -- query back through the REST API -------------------------------------------
    response = server.handle(
        Request(
            "GET",
            "/apps/SC/data",
            params={"limit": "3"},
            token=credentials["token"],
        )
    )
    print(f"GET /apps/SC/data -> {response.status}")
    for document in response.body:
        location = document.get("location")
        where = (
            f"({location['x_m']:.0f}, {location['y_m']:.0f}) "
            f"±{location['accuracy_m']:.0f}m via {location['provider']}"
            if location
            else "not localized"
        )
        print(f"  t={document['taken_at']:6.0f}s  "
              f"{document['noise_dba']:5.1f} dB(A)  {where}")

    totals = server.handle(
        Request("GET", "/apps/SC/analytics/totals", token=credentials["token"])
    )
    print(f"analytics totals: {totals.body}")

    # -- batch ingest: a second phone uploads its overnight backlog ---------------
    # One POST per 100 observations through the batch endpoint: the
    # server runs dedup, pseudonymization, the atomic store insert and
    # the analytics fold once per batch instead of once per document —
    # and a retransmitted batch deduplicates to exactly-once storage.
    bob = server.enroll_user("SC", "bob", "s3cret")
    batch_uplink = RestBatchUplink(server, app_id="SC", token=bob["token"])
    bob_client = GoFlowClient(
        "bob",
        AppVersion.V1_3,
        batch_uplink,
        clock=lambda: simulator.now,
        uplink_batch=100,  # buffer to full batches; flush in 100-doc POSTs
    )
    backlog = SensingScheduler(
        simulator,
        "bob",
        model,
        PhoneContext(x_m=900.0, y_m=1200.0),
        bob_client.on_observation,
        simulator.rngs.stream("phone.bob"),
        opportunistic_period_s=30.0,
    )
    backlog.start_opportunistic(until=simulator.now + 3 * 3600.0)
    simulator.run_until(simulator.now + 3 * 3600.0)
    bob_client.flush()
    print(f"bob uploaded {backlog.produced} observations in "
          f"{bob_client.stats.transmissions} batched transmissions; "
          f"server now holds {server.ingested} observations")

    # -- live subscription: push instead of poll ----------------------------------
    # A continuous query: the server fans matching observations out to
    # the subscription's outbox at ingest time (bounded queue,
    # drop-oldest + lagged markers if we fall behind), and folds a live
    # noise-map tile per 500 m grid cell — no per-poll rescans.
    live = bob_client.subscribe(
        server, token=bob["token"], tiles=True, filter_spec={"model": "A0001"}
    )
    backlog.start_opportunistic(until=simulator.now + 1800.0)
    simulator.run_until(simulator.now + 1800.0)
    bob_client.flush()
    events = live.drain()  # long-poll with automatic ack cursors
    pushed = [e for e in events if e["kind"] == "observation"]
    tiles = [e for e in events if e["kind"] == "tile"]
    print(f"live subscription pushed {len(pushed)} observations and "
          f"{len(tiles)} noise-map tile deltas (missed={live.missed})")
    webapp = SoundCityApp(server)  # the user-facing app server (Figure 1)
    live_map = webapp.handle(Request("GET", "/map/live", token=bob["token"]))
    print(f"GET /map/live -> {live_map.status}; "
          f"{len(live_map.body['tiles'])} tiles of "
          f"{live_map.body['cell_m']:.0f}m")
    live.close()

    # -- durable mode (opt-in crash safety) ---------------------------------------
    # The server above is in-memory: a crash loses everything. Pass
    # durable=True and a data directory to journal every write through
    # a write-ahead log and recover snapshot + log on startup — the
    # dedup ledger is restored too, so exactly-once ingest survives a
    # kill -9 between two server lives:
    #
    #     server = GoFlowServer(durable=True, data_dir="/var/lib/goflow")
    #     server.store.checkpoint()   # compact the log into a snapshot
    #
    # Group commit (WalConfig(sync_policy="group")) amortizes fsyncs
    # across appends; see docs/ARCHITECTURE.md "Durability & crash
    # recovery" for the record format and the recovery guarantees.

    # -- scale-out (opt-in sharding, opt-in process workers) -----------------------
    # Pass sharding=N to partition the store over N consistent-hash
    # shards (same API, scatter-gather reads), and backend="process" to
    # host each shard in its own worker process behind batched binary
    # IPC — per-shard CPU work then runs outside this interpreter's
    # GIL, and a killed worker respawns, recovers its WAL, and keeps
    # ingest exactly-once:
    #
    #     server = GoFlowServer(sharding=4, backend="process")
    #     server.register_app("SC")
    #     server.data.ingest_many("SC", backlog_documents)
    #     server.middleware_stats()["sharding"]["workers"]  # pid/rss/queue per worker
    #     server.router.close()  # drain and reap the workers
    #
    # See docs/ARCHITECTURE.md "Process scale-out & IPC plane".


if __name__ == "__main__":
    main()
