#!/usr/bin/env python
"""The Figure 16/17 energy-delay tradeoff, plus a buffer-size sweep.

Reproduces §5.3's protocol (phones at 80 %, 10 AM-5 PM, one measurement
per minute) across {no app, unbuffered, buffered} x {WiFi, 3G}, then
sweeps the buffer size to show the full tradeoff curve the paper's
take-away recommends tuning.

Run:  python examples/energy_tradeoff.py
"""

from repro.analysis.delays import summarize_delays
from repro.analysis.reports import format_table
from repro.campaign import CampaignConfig, EnergyExperiment, FleetCampaign
from repro.client.versions import AppVersion


def battery_matrix() -> None:
    experiment = EnergyExperiment(model_name="A0001", sensing_period_s=60.0, seed=3)
    runs = experiment.run_all()
    baseline = runs[0].depletion
    rows = [
        {
            "configuration": run.label,
            "battery used": f"{100 * run.depletion:.2f} pts",
            "vs no-app": f"{run.depletion / baseline:.2f}x",
            "radio energy": f"{sum(v for k, v in run.ledger.items() if k.startswith('radio')):.0f} J",
        }
        for run in runs
    ]
    print("Figure 16 — battery depletion, 10AM-5PM @ 1-minute sensing")
    print(format_table(rows, ["configuration", "battery used", "vs no-app", "radio energy"]))
    print()


def delay_comparison() -> None:
    print("Figure 17 — transmission delays per app version (2-day fleet)")
    rows = []
    for version in (AppVersion.V1_1, AppVersion.V1_2_9, AppVersion.V1_3):
        campaign = FleetCampaign(
            CampaignConfig(seed=17, scale=0.01, days=2.0, app_version=version)
        ).run()
        summary = summarize_delays(campaign.analytics.transmission_delays())
        rows.append(
            {
                "version": version.value,
                "<=10s": f"{100 * summary.within_10s:.0f} %",
                "<=1h": f"{100 * summary.within_1h:.0f} %",
                ">2h": f"{100 * summary.over_2h:.0f} %",
                "median": f"{summary.median_s:.0f} s",
            }
        )
    print(format_table(rows, ["version", "<=10s", "<=1h", ">2h", "median"]))
    print("\npaper: buffering saves energy but moderately thickens the"
          "\nmulti-hour tail — tune the buffer to the application.")


def main() -> None:
    battery_matrix()
    delay_comparison()


if __name__ == "__main__":
    main()
