#!/usr/bin/env python
"""The SoundCity user experience, end to end (§4.2's three experiences).

One simulated day in the life of a SoundCity user:

1. *Engage* — opportunistic background sensing plus a participatory
   journey during the lunchtime walk;
2. *Quantified self* — the web app's daily exposure summary, hourly
   profile, and WHO health guidance;
3. *Share* — the journey is shared publicly and a neighbour gets the
   notification;
4. *Feedback loop* (§8) — the app prompts for feedback exactly when the
   measurement is loud and well-localized, and the collected ratings
   build the user's noise-sensitivity profile.

Run:  python examples/soundcity_webapp.py
"""

from repro.client import AppVersion, BrokerUplink, GoFlowClient
from repro.core import GoFlowServer, Request
from repro.devices import DeviceRegistry
from repro.sensing import PhoneContext, SensingScheduler
from repro.simulation import Simulator
from repro.webapp import PromptPolicy, SoundCityApp


def main() -> None:
    simulator = Simulator(seed=12)
    server = GoFlowServer(clock=lambda: simulator.now)
    server.register_app("SC")
    # a chattier prompt policy than the default, for demonstration
    app = SoundCityApp(
        server,
        prompt_policy=PromptPolicy(
            min_noise_dba=58.0, max_accuracy_m=60.0, min_gap_s=3600.0
        ),
    )

    alice = server.enroll_user("SC", "alice", "pw")
    neighbour = server.enroll_user("SC", "bob", "pw")
    server.channels.subscribe("SC", "bob", "FR92120", "Journey")

    # -- a day of sensing ---------------------------------------------------
    model = DeviceRegistry().get("SM-G900F")
    uplink = BrokerUplink(server.broker, alice["exchange"], app_id="SC")
    client = GoFlowClient("alice", AppVersion.V1_2_9, uplink,
                          clock=lambda: simulator.now)
    scheduler = SensingScheduler(
        simulator,
        "alice",
        model,
        PhoneContext(1200.0, 900.0),
        client.on_observation,
        simulator.rngs.stream("phone.alice"),
    )
    scheduler.start_opportunistic(until=86400.0)
    # lunchtime journey: 12:00-12:30, sample every minute
    simulator.at(12 * 3600.0, lambda: scheduler.start_journey(60.0, 1800.0))
    simulator.run_until(86400.0)
    client.flush()
    print(f"day simulated: {scheduler.produced} measurements, "
          f"{server.ingested} stored")

    # -- quantified self --------------------------------------------------------
    daily = app.handle(
        Request("GET", "/me/exposure/daily/0", token=alice["token"])
    )
    body = daily.body
    print(f"\ndaily exposure: Leq {body['leq_dba']} dB(A) over "
          f"{body['measurements']} measurements")
    print(f"  WHO band: {body['band']} — {body['advice']}")
    hourly = app.handle(
        Request("GET", "/me/exposure/hourly/0", token=alice["token"])
    )
    loudest = max(hourly.body.items(), key=lambda kv: kv[1])
    print(f"  loudest hour: {loudest[0]}h at {loudest[1]} dB(A)")

    # -- share the journey ---------------------------------------------------------
    created = app.handle(
        Request(
            "POST",
            "/journeys",
            body={
                "title": "Lunch walk",
                "started_at": 12 * 3600.0,
                "ended_at": 12.5 * 3600.0,
                "home_zone": "FR92120",
            },
            token=alice["token"],
        )
    )
    journey_id = created.body["journey_id"]
    summary = app.handle(
        Request("GET", f"/journeys/{journey_id}/summary", token=alice["token"])
    )
    print(f"\njourney summary: {summary.body['samples']} samples, "
          f"Leq {summary.body['leq_dba']} dB(A), "
          f"track {summary.body['track_length_m']} m")
    app.handle(
        Request(
            "POST",
            f"/journeys/{journey_id}/share",
            body={"visibility": "public"},
            token=alice["token"],
        )
    )
    notification = server.broker.get_queue(neighbour["queue"]).get()
    print(f"bob was notified: public journey {notification.body['title']!r} "
          f"in {notification.body['zone']}")

    # -- the feedback loop ------------------------------------------------------------
    print("\nfeedback prompts over the day (loud + well-localized + not"
          " recently prompted):")
    prompted = 0
    for document in server.data.collection.find({}).sort("taken_at").to_list():
        if app.feedback.prompt("alice", document):
            prompted += 1
            # alice rates loud moments as annoying (rating grows with dB)
            rating = max(1, min(5, int((document["noise_dba"] - 40.0) / 10.0)))
            app.handle(
                Request(
                    "POST",
                    "/feedback",
                    body={
                        "rating": rating,
                        "noise_dba": document["noise_dba"],
                        "taken_at": document["taken_at"],
                        "zone": "FR92120",
                    },
                    token=alice["token"],
                )
            )
    print(f"  prompts issued: {prompted} "
          f"(suppressed by the non-invasiveness budget: "
          f"{app.feedback.prompts_suppressed})")
    profile = app.handle(Request("GET", "/me/sensitivity", token=alice["token"]))
    if profile.status == 200:
        print(f"  sensitivity profile: {profile.body['sensitivity_per_db']} "
              f"rating/dB, tolerance ~{profile.body['tolerance_dba']} dB(A)")
    else:
        print("  not enough rated feedback for a sensitivity profile yet")


if __name__ == "__main__":
    main()
