#!/usr/bin/env python
"""City-scale noise campaign with data assimilation.

The SoundCity story end to end (§4.2):

1. a synthetic city has a *true* noise field (streets + venues);
2. the numerical model's map is wrong (biased traffic, missing venues,
   correlated formulation error);
3. a crowd-sensing campaign runs on the full GoFlow stack — phones sense
   the city field through their heterogeneous microphones (indoor
   attenuation, per-model bias), buffer, uplink, and the server stores
   pseudonymized documents;
4. stored observations are filtered (outdoor, daytime, localized),
   calibrated per model, and assimilated with BLUE;
5. the corrected map is scored against the truth.

Run:  python examples/noise_campaign.py
"""

from repro.analysis.reports import format_table
from repro.assimilation.observation import PointObservation
from repro.calibration.database import CalibrationDatabase
from repro.campaign import AssimilationExperiment, CampaignConfig, FleetCampaign
from repro.devices import DeviceRegistry

EXTENT_M = 4000.0
MOVING = {"foot", "bicycle", "vehicle"}


def run_fleet(experiment: AssimilationExperiment):
    """A 3-day campaign whose phones sense the experiment's true city."""
    config = CampaignConfig(
        seed=9,
        scale=0.03,
        days=3.0,
        city_extent_m=EXTENT_M,
        city_model=experiment.truth_model,
    )
    result = FleetCampaign(config).run()
    totals = result.analytics.totals()
    print(
        f"campaign: {len(result.population)} devices, "
        f"{totals['total']} observations stored, "
        f"{totals['localized']} localized "
        f"({100 * totals['localized'] / totals['total']:.0f} %)"
    )
    return result


def calibrate_fleet(experiment: AssimilationExperiment) -> CalibrationDatabase:
    """Per-model calibration parties (§5.2) for every fleet model."""
    database = CalibrationDatabase()
    for name in DeviceRegistry().names():
        party = experiment.calibration_from_party(name)
        database.record_fit(name, party.get(name).fit, method="reference-party")
    sample = database.get("A0001").fit
    print(
        f"calibrated {len(database.models())} models "
        f"(e.g. A0001: gain={sample.gain:.3f}, offset={sample.offset_db:+.2f} dB)"
    )
    return database


def select_and_assimilate(campaign, experiment, calibration):
    """The server-side analysis job: filter, calibrate, assimilate.

    Opportunistic indoor measurements are systematically attenuated by
    the building envelope — exactly the "many erroneous measurements
    depending on the situation of the phone" the paper warns about — so
    the job keeps outdoor evidence: observations taken while the user
    was recognizably moving, localized to <=120 m, during the day.
    """
    documents = campaign.server.data.collection.find(
        {
            "location": {"$exists": True},
            "location.accuracy_m": {"$lte": 120.0},
            "activity.label": {"$in": sorted(MOVING)},
        }
    ).to_list()
    observations = []
    for document in documents:
        hour = (document["taken_at"] % 86400.0) / 3600.0
        if not 7.0 <= hour < 22.0:
            continue
        location = document["location"]
        if not experiment.grid.contains(location["x_m"], location["y_m"]):
            continue
        observations.append(
            PointObservation(
                x_m=location["x_m"],
                y_m=location["y_m"],
                value_db=calibration.correct(
                    document["model"], document["noise_dba"]
                ),
                accuracy_m=location["accuracy_m"],
                sensor_sigma_db=max(
                    3.0, calibration.sensor_sigma_db(document["model"])
                ),
            )
        )
    print(f"assimilating {len(observations)} outdoor, daytime, localized "
          "observations from the store (with innovation screening)")
    # Innovation screening rejects the gross outliers that slip through
    # the activity filter (misrecognized indoor measurements).
    return experiment.assimilate(observations, screen_k=2.5)


def main() -> None:
    experiment = AssimilationExperiment(seed=9, extent_m=EXTENT_M)
    campaign = run_fleet(experiment)
    calibration = calibrate_fleet(experiment)

    # reference run: synthetic observations drawn directly from the truth
    direct = experiment.assimilate(
        experiment.draw_observations(
            300, accuracy_m=35.0, model_name="A0001", calibration=calibration
        )
    )
    # the real thing: observations that traveled the full middleware stack
    piped = select_and_assimilate(campaign, experiment, calibration)

    rows = [
        {
            "observation source": "synthetic crowd (direct)",
            "bg RMSE": f"{direct.background_rmse:.2f}",
            "analysis RMSE": f"{direct.analysis_rmse:.2f}",
            "improvement": f"{100 * direct.improvement:.0f} %",
        },
        {
            "observation source": "GoFlow campaign store",
            "bg RMSE": f"{piped.background_rmse:.2f}",
            "analysis RMSE": f"{piped.analysis_rmse:.2f}",
            "improvement": f"{100 * piped.improvement:.0f} %",
        },
    ]
    print()
    print(format_table(rows, ["observation source", "bg RMSE", "analysis RMSE", "improvement"]))

    # render the three maps on one scale (the SoundCity web map, in ASCII)
    from repro.analysis.maps import render_comparison
    from repro.assimilation.observation import ObservationBatch  # noqa: F401

    batch = experiment.operator.build(
        experiment.draw_observations(
            300, accuracy_m=35.0, model_name="A0001", calibration=calibration
        )
    )
    analysis_map = experiment.blue.analyse(experiment.background_map, batch).analysis
    print()
    print(
        render_comparison(
            experiment.grid,
            {
                "truth": experiment.truth_map,
                "model (background)": experiment.background_map,
                "analysis": analysis_map,
            },
        )
    )
    print("\nassimilating the crowd corrects the model's noise map — the"
          "\npaper's §4.2 data-assimilation engine, reproduced end to end.")


if __name__ == "__main__":
    main()
