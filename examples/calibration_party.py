#!/usr/bin/env python
"""Calibration parties and crowd calibration (§5.2 and §8).

1. hold a "calibration party" for three models: sweep a reference sound
   level next to each phone, fit gain/offset, store it per model;
2. verify per-model calibration works because same-model devices agree
   (Figure 15's empirical finding);
3. crowd-calibrate the *remaining* models from co-located observation
   pairs anchored at the party-calibrated models — the paper's §8
   future-work mechanism.

Run:  python examples/calibration_party.py
"""

import numpy as np

from repro.analysis.reports import format_table
from repro.calibration import (
    CalibrationDatabase,
    CrowdCalibrator,
    find_pairs,
)
from repro.devices import DeviceRegistry

PARTY_MODELS = ["GT-I9505", "SM-G900F", "A0001"]
CROWD_MODELS = ["D5803", "NEXUS 5", "SM-N9005"]
MEAN_SCENE_DB = 62.0


def hold_party(database: CalibrationDatabase, registry, rng) -> None:
    print("== calibration party ==")
    reference = np.linspace(50.0, 80.0, 24)
    for name in PARTY_MODELS:
        model = registry.get(name)
        measured = np.array(
            [model.mic.apply(level, noise=float(rng.standard_normal()))
             for level in reference]
        )
        record = database.record_party(name, reference, measured)
        print(
            f"  {name:<10} fitted gain={record.fit.gain:.3f} "
            f"offset={record.fit.offset_db:+.2f} dB "
            f"(true {model.mic.gain:.3f} / {model.mic.offset_db:+.2f})"
        )


def crowd_calibrate(database: CalibrationDatabase, registry, rng) -> None:
    print("\n== crowd calibration of the remaining models ==")
    names = PARTY_MODELS + CROWD_MODELS
    documents = []
    t = 0.0
    for _ in range(300):
        scene = float(rng.uniform(45, 80))
        x, y = rng.uniform(0, 30, size=2)
        for name in rng.choice(names, size=2, replace=False):
            model = registry.get(name)
            documents.append(
                {
                    "model": name,
                    "noise_dba": model.mic.apply(
                        scene, noise=float(rng.standard_normal())
                    ),
                    "taken_at": t,
                    "location": {"x_m": float(x), "y_m": float(y)},
                }
            )
        t += 300.0
    pairs = find_pairs(documents)
    print(f"  mined {len(pairs)} co-location pairs from "
          f"{len(documents)} observations")

    def effective(name):
        mic = registry.get(name).mic
        return (mic.gain - 1.0) * MEAN_SCENE_DB + mic.offset_db

    anchors = {name: effective(name) for name in PARTY_MODELS}
    solved = CrowdCalibrator(anchors=anchors).solve(pairs)
    rows = []
    for name in CROWD_MODELS:
        rows.append(
            {
                "model": name,
                "crowd offset": f"{solved[name]:+.2f} dB",
                "true effective": f"{effective(name):+.2f} dB",
                "error": f"{abs(solved[name] - effective(name)):.2f} dB",
            }
        )
    print(format_table(rows, ["model", "crowd offset", "true effective", "error"]))
    for name, fit in CrowdCalibrator().to_fits(solved).items():
        if name in CROWD_MODELS:
            database.record_fit(name, fit, method="crowd")


def apply_to_field_measurement(database: CalibrationDatabase, registry) -> None:
    print("\n== applying the calibration database in the field ==")
    rows = []
    for name in PARTY_MODELS + CROWD_MODELS:
        model = registry.get(name)
        raw = model.mic.apply(MEAN_SCENE_DB)
        corrected = database.correct(name, raw)
        rows.append(
            {
                "model": name,
                "method": database.get(name).method,
                "raw": f"{raw:.1f} dB(A)",
                "corrected": f"{corrected:.1f} dB(A)",
                "truth": f"{MEAN_SCENE_DB:.1f} dB(A)",
            }
        )
    print(format_table(rows, ["model", "method", "raw", "corrected", "truth"]))


def main() -> None:
    registry = DeviceRegistry()
    rng = np.random.default_rng(55)
    database = CalibrationDatabase()
    hold_party(database, registry, rng)
    crowd_calibrate(database, registry, rng)
    apply_to_field_measurement(database, registry)


if __name__ == "__main__":
    main()
