#!/usr/bin/env python
"""Journey mode and the Figure 3 pub/sub scenario.

Two users in the city:

- *mob1* subscribes to feedback reports in their current neighbourhood
  and to public Journey announcements at their home zone (exactly the
  scenario the paper narrates around Figure 3);
- *mob2* walks a participatory Journey (GPS-heavy sensing at a chosen
  frequency), publishes a public announcement, and drops a feedback
  report.

The script shows the routing outcome on mob1's queue and compares the
journey's location quality with opportunistic sensing (Figure 20).

Run:  python examples/journey_mode.py
"""

from collections import Counter

from repro.client import AppVersion, BrokerUplink, GoFlowClient
from repro.core import GoFlowServer
from repro.devices import DeviceRegistry
from repro.sensing import PhoneContext, SensingScheduler
from repro.simulation import Simulator


class WalkingContext(PhoneContext):
    """A context that walks east at 1.3 m/s (on foot)."""

    def __init__(self, simulator, x_m, y_m):
        super().__init__(x_m, y_m)
        self._sim = simulator
        self._start = simulator.now

    def position(self):
        return (self._x + 1.3 * (self._sim.now - self._start), self._y)

    def activity(self):
        return "foot"


def main() -> None:
    simulator = Simulator(seed=3)
    server = GoFlowServer(clock=lambda: simulator.now)
    server.register_app("SC")

    mob1 = server.enroll_user("SC", "mob1", "pw")
    mob2 = server.enroll_user("SC", "mob2", "pw")

    # -- mob1's subscriptions (Figure 3's bindings) -------------------------
    server.channels.subscribe("SC", "mob1", "FR75013", "Feedback")
    server.channels.subscribe("SC", "mob1", "FR92120", "Journey")
    print("mob1 subscribed to FR75013/Feedback and FR92120/Journey")

    # -- mob2 walks a journey --------------------------------------------------
    model = DeviceRegistry().get("D5803")  # Xperia Z3 Compact
    uplink = BrokerUplink(server.broker, mob2["exchange"], app_id="SC")
    client = GoFlowClient("mob2", AppVersion.V1_2_9, uplink,
                          clock=lambda: simulator.now)
    scheduler = SensingScheduler(
        simulator,
        "mob2",
        model,
        WalkingContext(simulator, 500.0, 800.0),
        client.on_observation,
        simulator.rngs.stream("phone.mob2"),
    )
    scheduler.start_journey(frequency_s=30.0, duration_s=900.0)  # 15-minute walk

    # mob2 also announces the journey publicly and files a feedback report
    publisher = server.broker.connect("mob2-extra").channel()
    publisher.basic_publish(
        mob2["exchange"],
        "FR92120.Journey",
        {"app_id": "SC", "user_id": "mob2", "title": "Canal walk", "public": True},
    )
    publisher.basic_publish(
        mob2["exchange"],
        "FR75013.Feedback",
        {"app_id": "SC", "user_id": "mob2", "text": "construction noise"},
    )

    simulator.run_until(1000.0)
    client.flush()

    # -- what reached mob1? -------------------------------------------------------
    queue = server.broker.get_queue(mob1["queue"])
    print(f"\nmob1's queue received {queue.ready_count} notifications:")
    while True:
        delivery = queue.get()
        if delivery is None:
            break
        body = delivery.body
        kind = "journey" if "title" in body else "feedback"
        detail = body.get("title") or body.get("text")
        print(f"  [{kind}] from {body.get('user_id')}: {detail}")

    # -- journey location quality (Figure 20) ----------------------------------------
    journey_docs = server.data.collection.find({"mode": "journey"}).to_list()
    providers = Counter(
        doc["location"]["provider"] for doc in journey_docs if "location" in doc
    )
    localized = sum(providers.values())
    print(f"\njourney produced {len(journey_docs)} observations, "
          f"{localized} localized:")
    for provider, count in providers.most_common():
        print(f"  {provider:<8} {count:3d}  ({100 * count / localized:.0f} %)")
    print("paper: journey mode yields ~40 points more GPS fixes than "
          "opportunistic sensing")


if __name__ == "__main__":
    main()
