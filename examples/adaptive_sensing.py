#!/usr/bin/env python
"""Crowd-informed adaptive sensing and gap inference (§8 future work).

Demonstrates the two §8 mechanisms built on top of the reproduction:

1. **adaptive sensing** — under the same measurement budget, a planner
   that senses where the assimilated map is most uncertain (and where
   the crowd hasn't measured) beats blind periodic sampling;
2. **crowd inference** — a user's exposure during a sensing gap is
   estimated from crowd measurements near their interpolated path.

Run:  python examples/adaptive_sensing.py
"""

import numpy as np

from repro.adaptive import AdaptivePlanner, CoverageTracker, CrowdInference, UniformPlanner
from repro.analysis.reports import format_table
from repro.assimilation.observation import PointObservation
from repro.campaign import AssimilationExperiment

BUDGET = 0.15
OPPORTUNITIES = 900


def compare_planners(experiment, calibration) -> None:
    print("== adaptive vs uniform sensing under one budget ==")
    rng = np.random.default_rng(100)
    width = experiment.grid.width_m
    opportunities = []
    for _ in range(OPPORTUNITIES):
        # people cluster: 70 % of opportunities in one quadrant
        if rng.random() < 0.7:
            opportunities.append(
                (float(rng.uniform(1, 0.4 * width)), float(rng.uniform(1, 0.4 * width)))
            )
        else:
            opportunities.append(
                (float(rng.uniform(1, width - 1)), float(rng.uniform(1, width - 1)))
            )

    def observe(x, y, sample_rng):
        model = experiment.registry.get("A0001")
        true_level = experiment.truth_model.level_at(
            x, y, field=experiment.truth_map
        )
        measured = model.mic.apply(
            true_level, noise=float(sample_rng.standard_normal())
        )
        return PointObservation(
            x_m=x,
            y_m=y,
            value_db=calibration.correct(model.name, measured),
            accuracy_m=25.0,
            sensor_sigma_db=calibration.sensor_sigma_db(model.name),
        )

    rows = []
    for label in ("uniform", "adaptive"):
        if label == "uniform":
            planner = UniformPlanner(BUDGET, np.random.default_rng(101))
        else:
            planner = AdaptivePlanner(
                experiment.grid,
                BUDGET,
                np.random.default_rng(102),
                coverage=CoverageTracker(experiment.grid, hour_buckets=1),
            )
            planner.update_variance_map(np.full(experiment.grid.size, 16.0))
        sample_rng = np.random.default_rng(103)
        accepted = [
            observe(x, y, sample_rng)
            for t, (x, y) in enumerate(opportunities)
            if planner.decide(x, y, 300.0 * t).sense
        ]
        outcome = experiment.assimilate(accepted, screen_k=3.0)
        rows.append(
            {
                "planner": label,
                "measurements": len(accepted),
                "analysis RMSE": f"{outcome.analysis_rmse:.2f} dB",
                "improvement": f"{100 * outcome.improvement:.0f} %",
            }
        )
    print(format_table(rows, ["planner", "measurements", "analysis RMSE", "improvement"]))


def infer_gap(experiment) -> None:
    print("\n== inferring a user's exposure during a sensing gap ==")
    rng = np.random.default_rng(200)
    # the user walked across the city but their phone only sensed at the
    # endpoints of a 4-hour window
    own = [
        {
            "noise_dba": 58.0,
            "taken_at": 0.0,
            "location": {"x_m": 200.0, "y_m": 200.0},
        },
        {
            "noise_dba": 61.0,
            "taken_at": 4 * 3600.0,
            "location": {"x_m": 3400.0, "y_m": 3400.0},
        },
    ]
    # the crowd measured along the same corridor throughout
    crowd = []
    for k in range(250):
        t = float(rng.uniform(0, 4 * 3600.0))
        alpha = t / (4 * 3600.0)
        x = 200.0 + alpha * 3200.0 + float(rng.normal(0, 80.0))
        y = 200.0 + alpha * 3200.0 + float(rng.normal(0, 80.0))
        if not experiment.grid.contains(x, y):
            continue
        level = experiment.truth_model.level_at(x, y, field=experiment.truth_map)
        crowd.append(
            {
                "noise_dba": level + float(rng.normal(0, 2.0)),
                "taken_at": t,
                "location": {"x_m": x, "y_m": y},
            }
        )
    inference = CrowdInference()
    filled = inference.fill_gaps(own, crowd, window_s=3600.0)
    rows = []
    for entry in filled:
        truth = experiment.truth_model.level_at(
            entry["x_m"], entry["y_m"], field=experiment.truth_map
        )
        rows.append(
            {
                "hour": f"{entry['taken_at'] / 3600.0:.0f}",
                "estimated": f"{entry['estimate_dba']:.1f} dB(A)",
                "true local level": f"{truth:.1f} dB(A)",
                "support": entry["support"],
                "confidence": entry["confidence"],
            }
        )
    print(format_table(rows, ["hour", "estimated", "true local level", "support", "confidence"]))
    print("\nthe crowd fills the user's sensing gap — §8's 'missing data"
          "\n... inferred from the crowd measurements'.")


def main() -> None:
    experiment = AssimilationExperiment(seed=77)
    calibration = experiment.calibration_from_party("A0001")
    compare_planners(experiment, calibration)
    infer_gap(experiment)


if __name__ == "__main__":
    main()
